//! Optimization of the error-bound configuration — Algorithm 2 (§3.4).
//!
//! A knapsack-style dynamic program over a discretized accuracy-loss budget
//! (the paper's `[0..100]·ε★` grid): choose one assessed error bound per fc
//! layer so the summed per-layer degradations stay within ε★ while the
//! total compressed size is minimal, then trace back the per-layer choices.
//! The additivity of degradations is the linearity property of Eq. (1).
//!
//! [`optimize_for_size`] is the paper's *expected-ratio* mode: the same DP
//! with size and degradation swapped — minimize total degradation subject
//! to a size budget.

use crate::assessment::LayerAssessment;
use crate::codec::DataCodecKind;
use crate::DeepSzError;
use dsz_nn::FcLayerRef;

/// Budget grid resolution (the paper iterates ϵ over `[0..100]·ε★`).
const GRID: usize = 100;

/// The error bound (and data codec) chosen for one layer.
#[derive(Debug, Clone)]
pub struct ChosenLayer {
    /// Which layer.
    pub fc: FcLayerRef,
    /// Chosen absolute error bound.
    pub eb: f64,
    /// Measured single-layer degradation at this bound.
    pub degradation: f64,
    /// Compressed data-array bytes at this bound (under `codec`).
    pub data_bytes: usize,
    /// Lossless-compressed index-array bytes.
    pub index_bytes: usize,
    /// Data codec that won this layer's assessment at this bound — the
    /// encode pipeline compresses the layer with exactly this codec.
    pub codec: DataCodecKind,
    /// Index of the chosen point in the layer's assessment.
    pub point_index: usize,
}

impl ChosenLayer {
    /// Total compressed bytes for this layer.
    pub fn total_bytes(&self) -> usize {
        self.data_bytes + self.index_bytes
    }
}

/// A complete per-layer error-bound configuration.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Per-layer choices, in fc order.
    pub layers: Vec<ChosenLayer>,
    /// Predicted total accuracy loss (Σ per-layer Δ, clamped at 0).
    pub predicted_loss: f64,
    /// Total compressed bytes across layers.
    pub total_bytes: usize,
}

fn clamp_degradation(d: f64) -> f64 {
    d.max(0.0)
}

/// Expected-accuracy mode: minimize total size subject to
/// `Σ Δ ≤ expected_loss`.
pub fn optimize_for_accuracy(
    assessments: &[LayerAssessment],
    expected_loss: f64,
) -> Result<Plan, DeepSzError> {
    if assessments.is_empty() {
        return Ok(Plan {
            layers: Vec::new(),
            predicted_loss: 0.0,
            total_bytes: 0,
        });
    }
    if expected_loss <= 0.0 || expected_loss.is_nan() {
        return Err(DeepSzError::Infeasible(
            "expected accuracy loss must be positive; use a tiny value for 'zero loss'".into(),
        ));
    }
    let step = expected_loss / GRID as f64;
    let cost_of = |d: f64| -> Option<usize> {
        let c = (clamp_degradation(d) / step).ceil() as usize;
        (c <= GRID).then_some(c)
    };

    // dp[g] = min total size with cumulative cost ≤ g; usize::MAX = ∞.
    // Zero layers cost nothing at any budget.
    let mut dp = vec![0usize; GRID + 1];
    let mut choices: Vec<Vec<u16>> = Vec::with_capacity(assessments.len());
    for a in assessments {
        let mut ndp = vec![usize::MAX; GRID + 1];
        let mut choice = vec![u16::MAX; GRID + 1];
        for (pi, p) in a.points.iter().enumerate() {
            let Some(c) = cost_of(p.degradation) else {
                continue;
            };
            let size = p.data_bytes + a.index_bytes;
            for g in c..=GRID {
                let prev = dp[g - c];
                if prev == usize::MAX {
                    continue;
                }
                let total = prev + size;
                if total < ndp[g] {
                    ndp[g] = total;
                    choice[g] = pi as u16;
                }
            }
        }
        // Make dp monotone: budget g can always fall back to g-1's best.
        for g in 1..=GRID {
            if ndp[g - 1] < ndp[g] {
                ndp[g] = ndp[g - 1];
                choice[g] = choice[g - 1];
            }
        }
        if ndp[GRID] == usize::MAX {
            return Err(DeepSzError::Infeasible(format!(
                "layer {} has no assessed error bound within the loss budget; \
                 lower AssessmentConfig::start_eb",
                a.fc.name
            )));
        }
        dp = ndp;
        choices.push(choice);
    }

    // Trace back from the full budget.
    let mut g = GRID;
    let mut picked: Vec<usize> = vec![0; assessments.len()];
    for (li, a) in assessments.iter().enumerate().rev() {
        let pi = choices[li][g] as usize;
        picked[li] = pi;
        let c = (clamp_degradation(a.points[pi].degradation) / step).ceil() as usize;
        g -= c.min(g);
    }

    Ok(build_plan(assessments, &picked))
}

/// Expected-ratio mode: minimize total degradation subject to
/// `Σ size ≤ target_bytes`.
pub fn optimize_for_size(
    assessments: &[LayerAssessment],
    target_bytes: usize,
) -> Result<Plan, DeepSzError> {
    if assessments.is_empty() {
        return Ok(Plan {
            layers: Vec::new(),
            predicted_loss: 0.0,
            total_bytes: 0,
        });
    }
    let grid = 200usize;
    let bucket = (target_bytes as f64 / grid as f64).max(1.0);
    let cost_of = |bytes: usize| -> Option<usize> {
        let c = (bytes as f64 / bucket).ceil() as usize;
        (c <= grid).then_some(c)
    };

    let mut dp = vec![0f64; grid + 1];
    let mut choices: Vec<Vec<u16>> = Vec::with_capacity(assessments.len());
    for a in assessments {
        let mut ndp = vec![f64::INFINITY; grid + 1];
        let mut choice = vec![u16::MAX; grid + 1];
        for (pi, p) in a.points.iter().enumerate() {
            let Some(c) = cost_of(p.data_bytes + a.index_bytes) else {
                continue;
            };
            let d = clamp_degradation(p.degradation);
            for g in c..=grid {
                if !dp[g - c].is_finite() {
                    continue;
                }
                let total = dp[g - c] + d;
                if total < ndp[g] {
                    ndp[g] = total;
                    choice[g] = pi as u16;
                }
            }
        }
        for g in 1..=grid {
            if ndp[g - 1] < ndp[g] {
                ndp[g] = ndp[g - 1];
                choice[g] = choice[g - 1];
            }
        }
        if !ndp[grid].is_finite() {
            return Err(DeepSzError::Infeasible(format!(
                "layer {} cannot fit the size budget at any assessed bound",
                a.fc.name
            )));
        }
        dp = ndp;
        choices.push(choice);
    }

    let mut g = grid;
    let mut picked: Vec<usize> = vec![0; assessments.len()];
    for (li, a) in assessments.iter().enumerate().rev() {
        let pi = choices[li][g] as usize;
        picked[li] = pi;
        let c = ((a.points[pi].data_bytes + a.index_bytes) as f64 / bucket).ceil() as usize;
        g -= c.min(g);
    }

    Ok(build_plan(assessments, &picked))
}

fn build_plan(assessments: &[LayerAssessment], picked: &[usize]) -> Plan {
    let mut layers = Vec::with_capacity(assessments.len());
    let mut predicted = 0f64;
    let mut total = 0usize;
    for (a, &pi) in assessments.iter().zip(picked) {
        let p = a.points[pi];
        predicted += clamp_degradation(p.degradation);
        total += p.data_bytes + a.index_bytes;
        layers.push(ChosenLayer {
            fc: a.fc.clone(),
            eb: p.eb,
            degradation: p.degradation,
            data_bytes: p.data_bytes,
            index_bytes: a.index_bytes,
            codec: p.codec,
            point_index: pi,
        });
    }
    Plan {
        layers,
        predicted_loss: predicted,
        total_bytes: total,
    }
}

/// Exhaustive search over all point combinations — exponential; used by
/// tests and the `ablation_knapsack` bench to certify DP optimality on
/// small instances.
pub fn brute_force_for_accuracy(
    assessments: &[LayerAssessment],
    expected_loss: f64,
) -> Option<Plan> {
    fn recurse(
        assessments: &[LayerAssessment],
        li: usize,
        picked: &mut Vec<usize>,
        best: &mut Option<(usize, Vec<usize>)>,
        loss_left: f64,
        size_so_far: usize,
    ) {
        if li == assessments.len() {
            if best.as_ref().is_none_or(|(s, _)| size_so_far < *s) {
                *best = Some((size_so_far, picked.clone()));
            }
            return;
        }
        for (pi, p) in assessments[li].points.iter().enumerate() {
            let d = p.degradation.max(0.0);
            if d <= loss_left {
                picked.push(pi);
                recurse(
                    assessments,
                    li + 1,
                    picked,
                    best,
                    loss_left - d,
                    size_so_far + p.data_bytes + assessments[li].index_bytes,
                );
                picked.pop();
            }
        }
    }
    let mut best = None;
    recurse(assessments, 0, &mut Vec::new(), &mut best, expected_loss, 0);
    best.map(|(_, picked)| build_plan(assessments, &picked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assessment::EbPoint;
    use dsz_sparse::PairArray;

    fn fake_layer(name: &str, index_bytes: usize, pts: &[(f64, f64, usize)]) -> LayerAssessment {
        LayerAssessment {
            fc: FcLayerRef {
                layer_index: 0,
                name: name.into(),
                rows: 4,
                cols: 4,
            },
            pair: PairArray {
                rows: 4,
                cols: 4,
                data: vec![],
                index: vec![],
            },
            index_codec: dsz_lossless::LosslessKind::Zstd,
            index_bytes,
            points: pts
                .iter()
                .map(|&(eb, degradation, data_bytes)| EbPoint {
                    eb,
                    degradation,
                    data_bytes,
                    codec: DataCodecKind::Sz,
                })
                .collect(),
        }
    }

    #[test]
    fn picks_cheapest_feasible_combination() {
        // Layer A: loose bound saves 900 bytes but costs 0.3% accuracy.
        let a = fake_layer("a", 100, &[(1e-3, 0.0005, 1000), (1e-2, 0.003, 100)]);
        // Layer B: loose bound saves 100 bytes at 0.25%.
        let b = fake_layer("b", 50, &[(1e-3, 0.0002, 300), (1e-2, 0.0025, 200)]);
        // Budget 0.4%: can afford exactly one of the two loose bounds —
        // should take A's (bigger saving).
        let plan = optimize_for_accuracy(&[a.clone(), b.clone()], 0.004).unwrap();
        assert!(
            (plan.layers[0].eb - 1e-2).abs() < 1e-12,
            "A should go loose"
        );
        assert!(
            (plan.layers[1].eb - 1e-3).abs() < 1e-12,
            "B should stay tight"
        );
        let brute = brute_force_for_accuracy(&[a, b], 0.004).unwrap();
        assert_eq!(plan.total_bytes, brute.total_bytes);
    }

    #[test]
    fn dp_matches_brute_force_on_random_instances() {
        let mut s = 99u64;
        let mut rand = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 33) as f64 / (1u64 << 31) as f64
        };
        for trial in 0..30 {
            let layers: Vec<LayerAssessment> = (0..3)
                .map(|i| {
                    // Like a real assessment, the tightest bound is nearly
                    // lossless (so a feasible combination always exists);
                    // looser bounds trade accuracy for size.
                    let pts: Vec<(f64, f64, usize)> = (0..4)
                        .map(|j| {
                            let degradation = if j == 0 {
                                rand() * 0.0003
                            } else {
                                rand() * 0.004
                            };
                            (
                                10f64.powi(-(4 - j)),
                                degradation,
                                (rand() * 10_000.0) as usize + 100,
                            )
                        })
                        .collect();
                    fake_layer(&format!("l{i}"), (rand() * 500.0) as usize, &pts)
                })
                .collect();
            let dp = optimize_for_accuracy(&layers, 0.004).unwrap();
            let brute = brute_force_for_accuracy(&layers, 0.004).unwrap();
            // DP discretizes Δ upward, so it may be slightly conservative,
            // but can never beat brute force.
            assert!(
                dp.total_bytes >= brute.total_bytes,
                "trial {trial}: dp {} < brute {}",
                dp.total_bytes,
                brute.total_bytes
            );
            // And must stay within the loss budget.
            assert!(dp.predicted_loss <= 0.004 + 1e-12, "trial {trial}");
            // Conservatism gap should be small (≤ one grid step per layer).
            let gap = dp.total_bytes as f64 / brute.total_bytes.max(1) as f64;
            assert!(gap < 1.6, "trial {trial}: gap {gap}");
        }
    }

    #[test]
    fn infeasible_when_tightest_bound_already_too_lossy() {
        let a = fake_layer("a", 10, &[(1e-3, 0.05, 1000)]);
        assert!(matches!(
            optimize_for_accuracy(&[a], 0.004),
            Err(DeepSzError::Infeasible(_))
        ));
    }

    #[test]
    fn size_mode_minimizes_degradation_under_budget() {
        let a = fake_layer("a", 100, &[(1e-3, 0.001, 1000), (1e-2, 0.01, 200)]);
        let b = fake_layer("b", 100, &[(1e-3, 0.002, 800), (1e-2, 0.02, 150)]);
        // Big budget: both layers stay tight (lowest degradation).
        let plan = optimize_for_size(&[a.clone(), b.clone()], 10_000).unwrap();
        assert!((plan.layers[0].eb - 1e-3).abs() < 1e-12);
        assert!((plan.layers[1].eb - 1e-3).abs() < 1e-12);
        // Tight budget (≤ 700): both must go loose.
        let plan = optimize_for_size(&[a.clone(), b.clone()], 700).unwrap();
        assert!((plan.layers[0].eb - 1e-2).abs() < 1e-12);
        assert!((plan.layers[1].eb - 1e-2).abs() < 1e-12);
        // Impossible budget errors.
        assert!(matches!(
            optimize_for_size(&[a, b], 100),
            Err(DeepSzError::Infeasible(_))
        ));
    }

    #[test]
    fn zero_layers_trivial_plan() {
        let plan = optimize_for_accuracy(&[], 0.01).unwrap();
        assert!(plan.layers.is_empty());
        assert_eq!(plan.total_bytes, 0);
    }

    #[test]
    fn negative_degradations_are_free() {
        // Accuracy that *improves* should never consume budget.
        let a = fake_layer("a", 10, &[(1e-3, -0.002, 500), (1e-2, -0.001, 100)]);
        let plan = optimize_for_accuracy(&[a], 0.001).unwrap();
        assert_eq!(plan.layers[0].data_bytes, 100);
        assert_eq!(plan.predicted_loss, 0.0);
    }
}
