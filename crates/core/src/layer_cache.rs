//! Process-wide decoded-layer cache shared across models — the serving
//! layer's hot-path allocation (`docs/SERVING.md`).
//!
//! Streaming inference's per-model memory knobs
//! ([`CompressedFcModel::with_decoded_bytes_budget`](crate::streaming::CompressedFcModel::with_decoded_bytes_budget),
//! [`SpillCache`](crate::spill::SpillCache)) each bound *one* model's
//! footprint. A multi-tenant server holding N models under one RAM
//! budget needs the opposite shape: **one** quota, shared by every
//! tenant, with the globally hottest layers resident and the cold tail
//! re-decoded (or spill-rehydrated) on demand. [`SharedLayerCache`] is
//! that cache:
//!
//! * Entries are keyed by `(model, layer, record_fnv)` — the FNV of the
//!   layer's compressed record is part of the key, so hot-swapping a
//!   model id to new container bytes can never serve the old model's
//!   weights (the stale key simply stops being looked up and ages out;
//!   [`SharedLayerCache::purge_model`] drops it eagerly).
//! * Payloads are `Arc<Vec<f32>>`: a hit is a pointer clone, so any
//!   number of concurrent requests (micro-batches included) multiply
//!   against one resident copy. Eviction drops the cache's reference;
//!   requests mid-flight keep theirs until their matmul retires.
//! * The global quota is enforced by a [`ByteBudget`] ledger at
//!   *insertion* time: a decoded layer is parked only if its bytes
//!   [`try_charge`](ByteBudget::try_charge) under the cap after LRU
//!   eviction has made room, and a layer larger than the whole quota
//!   bypasses the cache entirely. The ledger therefore **never exceeds
//!   the quota** — not even transiently — and its high-water mark proves
//!   it. (The layer currently executing a matmul is owned by its
//!   request, not the cache; total live dense bytes are bounded by
//!   `quota + one executing layer per in-flight request`.)
//!
//! Lock discipline: one mutex guards the map; decodes never run under
//! it. Two threads that miss the same key concurrently both decode and
//! the later insert wins (its twin's ledger charge is released) — a
//! deliberate thundering-herd trade: decodes are idempotent and
//! bit-identical, so correctness is unaffected and the hot path stays
//! wait-free for hits.

// The cache sits on the serving decode path: malformed input and quota
// pressure must surface as values, never panics (`docs/ROBUSTNESS.md`).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use dsz_tensor::budget::ByteBudget;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Cache key: which model, which fc layer, and the FNV-1a digest of the
/// layer's compressed record (content-addressing, so swapped bytes can
/// never alias).
pub type LayerKey = (u64, usize, u64);

#[derive(Debug)]
struct Entry {
    payload: Arc<Vec<f32>>,
    bytes: usize,
    /// Logical touch clock; the smallest value is the LRU victim.
    touched: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<LayerKey, Entry>,
    clock: u64,
}

/// Monotonic activity counters plus the ledger's current/peak state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (a pointer clone).
    pub hits: u64,
    /// Lookups that found nothing (caller decoded).
    pub misses: u64,
    /// Decoded layers parked in the cache.
    pub insertions: u64,
    /// Entries dropped to make room (LRU order).
    pub evictions: u64,
    /// Decoded layers that could not park (larger than the whole quota,
    /// or raced with an insert of the same key) and went straight to the
    /// caller uncached.
    pub bypasses: u64,
    /// Bytes currently resident.
    pub live_bytes: usize,
    /// Peak resident bytes over the cache's lifetime (≤ quota, always).
    pub high_water: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache, in `[0, 1]`; `0.0`
    /// before any lookup. This is the hit-rate definition every bench
    /// records (`BENCH_serve.json`, `BENCH_encode_decode.json`).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The process-wide decoded-layer LRU cache. See the module docs for the
/// quota and keying contract; construct one per serving process (or per
/// test) and hand models a [`CacheHandle`] each via
/// [`SharedLayerCache::handle`].
#[derive(Debug)]
pub struct SharedLayerCache {
    budget: ByteBudget,
    inner: Mutex<Inner>,
    next_model: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    bypasses: AtomicU64,
}

impl SharedLayerCache {
    /// A cache bounded at `bytes_quota` resident decoded bytes. Quota 0
    /// is legal and means "never park anything" — every lookup misses,
    /// which is exactly the uncached serial path.
    pub fn new(bytes_quota: usize) -> Arc<Self> {
        Arc::new(Self {
            budget: ByteBudget::bounded(bytes_quota),
            inner: Mutex::new(Inner::default()),
            next_model: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
        })
    }

    /// Issues a handle with a fresh model id. Ids are never reused, so a
    /// reloaded model can never hit the unloaded generation's entries.
    pub fn handle(self: &Arc<Self>) -> CacheHandle {
        CacheHandle {
            cache: Arc::clone(self),
            model: self.next_model.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The configured byte quota.
    pub fn quota(&self) -> usize {
        self.budget.cap().unwrap_or(usize::MAX)
    }

    /// Bytes of decoded payloads currently resident (≤ quota).
    pub fn live_bytes(&self) -> usize {
        self.budget.current()
    }

    /// Resident bytes as a fraction of the quota, in `[0, 1]`; `0.0`
    /// for a zero quota (nothing can ever park). A cheap load watermark
    /// for serving dashboards and shed heuristics.
    pub fn utilization(&self) -> f64 {
        self.budget.utilization()
    }

    /// Snapshot of the activity counters and ledger state.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            live_bytes: self.budget.current(),
            high_water: self.budget.high_water(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panic under this lock can only be a bug in this module; the
        // map is still structurally sound, so recover rather than poison
        // every future request.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn fetch(&self, key: LayerKey) -> Option<Arc<Vec<f32>>> {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(&key) {
            Some(e) => {
                e.touched = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.payload))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Parks a decoded payload under `key`, evicting LRU entries until
    /// its bytes fit under the quota. Returns whether it was cached
    /// (`false` = bypass: larger than the whole quota, or an insert of
    /// the same key raced ahead). The ledger is charged *before* the map
    /// holds the entry and never exceeds the quota.
    pub fn insert(&self, key: LayerKey, payload: Arc<Vec<f32>>) -> bool {
        let bytes = payload.len() * 4;
        while !self.budget.try_charge(bytes) {
            // Evict the least-recently-touched entry; if there is
            // nothing left to evict the payload simply cannot fit.
            let evicted = {
                let mut inner = self.lock();
                let victim = inner
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.touched)
                    .map(|(k, _)| *k);
                victim.and_then(|k| inner.map.remove(&k))
            };
            match evicted {
                Some(e) => {
                    self.budget.release(e.bytes);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    self.bypasses.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
        let mut inner = self.lock();
        inner.clock += 1;
        let entry = Entry {
            payload,
            bytes,
            touched: inner.clock,
        };
        if let Some(old) = inner.map.insert(key, entry) {
            // A concurrent decode of the same key got here first; the
            // payloads are bit-identical, keep ours and release its
            // charge so the ledger stays exact.
            self.budget.release(old.bytes);
            self.bypasses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Drops every entry belonging to `model`, releasing their bytes —
    /// the unload/hot-swap path.
    pub fn purge_model(&self, model: u64) {
        let removed: Vec<Entry> = {
            let mut inner = self.lock();
            let keys: Vec<LayerKey> = inner
                .map
                .keys()
                .filter(|(m, _, _)| *m == model)
                .copied()
                .collect();
            keys.into_iter()
                .filter_map(|k| inner.map.remove(&k))
                .collect()
        };
        for e in removed {
            self.budget.release(e.bytes);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of resident entries (diagnostics).
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One model's view of a [`SharedLayerCache`]: the cache pointer plus
/// the model id baked into every key. Clones share the id (a clone of a
/// streaming model keeps hitting the same entries); a *new* generation
/// of the model must take a fresh handle.
#[derive(Debug, Clone)]
pub struct CacheHandle {
    cache: Arc<SharedLayerCache>,
    model: u64,
}

impl CacheHandle {
    /// The shared cache this handle points into.
    pub fn cache(&self) -> &Arc<SharedLayerCache> {
        &self.cache
    }

    /// This handle's model id (unique per [`SharedLayerCache::handle`]).
    pub fn model(&self) -> u64 {
        self.model
    }

    /// Looks up `(self.model, layer, record_fnv)`; on a miss runs
    /// `decode`, parks the result (quota permitting), and returns it.
    /// The decode runs outside every cache lock.
    pub fn get_or_decode<E>(
        &self,
        layer: usize,
        record_fnv: u64,
        decode: impl FnOnce() -> Result<Vec<f32>, E>,
    ) -> Result<Arc<Vec<f32>>, E> {
        let key = (self.model, layer, record_fnv);
        if let Some(hit) = self.cache.fetch(key) {
            return Ok(hit);
        }
        let payload = Arc::new(decode()?);
        self.cache.insert(key, Arc::clone(&payload));
        Ok(payload)
    }

    /// Drops this model's entries (see [`SharedLayerCache::purge_model`]).
    pub fn purge(&self) {
        self.cache.purge_model(self.model);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize, fill: f32) -> Arc<Vec<f32>> {
        Arc::new(vec![fill; n])
    }

    #[test]
    fn hit_after_insert_is_same_allocation() {
        let cache = SharedLayerCache::new(1 << 16);
        let h = cache.handle();
        let p = payload(8, 1.5);
        assert!(cache.insert((h.model(), 0, 7), Arc::clone(&p)));
        let got = cache.fetch((h.model(), 0, 7)).unwrap();
        assert!(Arc::ptr_eq(&got, &p), "hit must share the allocation");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().live_bytes, 32);
    }

    #[test]
    fn lru_eviction_under_quota() {
        // Quota fits exactly two 4-element entries.
        let cache = SharedLayerCache::new(32);
        let h = cache.handle();
        let m = h.model();
        assert!(cache.insert((m, 0, 0), payload(4, 0.0)));
        assert!(cache.insert((m, 1, 1), payload(4, 1.0)));
        // Touch layer 0 so layer 1 is the LRU victim.
        assert!(cache.fetch((m, 0, 0)).is_some());
        assert!(cache.insert((m, 2, 2), payload(4, 2.0)));
        assert!(cache.fetch((m, 0, 0)).is_some(), "recently touched stays");
        assert!(cache.fetch((m, 1, 1)).is_none(), "LRU victim evicted");
        assert!(cache.fetch((m, 2, 2)).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.high_water <= 32, "ledger must never pass the quota");
    }

    #[test]
    fn oversized_payload_bypasses() {
        let cache = SharedLayerCache::new(8);
        let h = cache.handle();
        assert!(!cache.insert((h.model(), 0, 0), payload(100, 0.5)));
        assert_eq!(cache.stats().bypasses, 1);
        assert_eq!(cache.stats().live_bytes, 0);
        assert_eq!(cache.stats().high_water, 0);
    }

    #[test]
    fn zero_quota_never_parks() {
        let cache = SharedLayerCache::new(0);
        let h = cache.handle();
        let out = h
            .get_or_decode(3, 9, || Ok::<_, ()>(vec![1.0f32; 16]))
            .unwrap();
        assert_eq!(out.len(), 16);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().high_water, 0);
    }

    #[test]
    fn purge_model_releases_only_that_model() {
        let cache = SharedLayerCache::new(1 << 16);
        let a = cache.handle();
        let b = cache.handle();
        assert_ne!(a.model(), b.model());
        cache.insert((a.model(), 0, 1), payload(4, 0.0));
        cache.insert((b.model(), 0, 1), payload(4, 0.0));
        a.purge();
        assert!(cache.fetch((a.model(), 0, 1)).is_none());
        assert!(cache.fetch((b.model(), 0, 1)).is_some());
        assert_eq!(cache.stats().live_bytes, 16);
    }

    #[test]
    fn get_or_decode_decodes_once_then_hits() {
        let cache = SharedLayerCache::new(1 << 16);
        let h = cache.handle();
        let mut decodes = 0u32;
        for _ in 0..3 {
            let out = h
                .get_or_decode(0, 42, || {
                    decodes += 1;
                    Ok::<_, ()>(vec![2.0f32; 4])
                })
                .unwrap();
            assert_eq!(*out, vec![2.0f32; 4]);
        }
        assert_eq!(decodes, 1, "hot layer decodes once");
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn hit_rate_definition() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn fresh_cache_reports_zero_hit_rate_and_utilization() {
        // The zero-lookup edge through a *live* cache (not a synthetic
        // stats struct): no division by zero, no NaN leaking into the
        // bench JSON.
        let cache = SharedLayerCache::new(64);
        assert_eq!(cache.stats().hit_rate(), 0.0);
        assert_eq!(cache.utilization(), 0.0);
        assert!(cache.stats().hit_rate().is_finite());
        // Inserts alone (no lookups) still report a 0.0 hit rate.
        let h = cache.handle();
        assert!(cache.insert((h.model(), 0, 1), payload(4, 1.0)));
        assert_eq!(cache.stats().hit_rate(), 0.0);
        assert!((cache.utilization() - 0.25).abs() < 1e-12);
    }
}
