//! Compressed model generation and decoding — step 4 (§3.5).
//!
//! Encoding takes the assessment + plan and emits a self-describing
//! **DSZM v4** container: per fc layer, the `data` array compressed with
//! the plan's chosen [`crate::codec::DataCodec`] at the chosen error bound (the
//! one-byte codec id is recorded in the layer record), and the
//! best-fit-lossless-compressed `index` array — each record starting on
//! a 64-byte boundary, indexed and digested by a checksummed footer
//! (`docs/FORMAT.md`) so [`crate::seek::SeekableContainer`] can
//! random-access single layers. Decoding reverses the stages — lossless
//! decompression, lossy data decompression through the codec registry,
//! sparse-matrix reconstruction — and reports the time spent in each,
//! which is exactly the breakdown of the paper's Figure 7b.
//!
//! Older DSZM generations (v3: checksummed but unaligned; v2: no
//! integrity data; v1: no codec id, data always an SZ stream) keep
//! decoding via the version-byte dispatch, mirroring the SZ v1/v2/v3/v4
//! stream precedent; [`encode_with_plan_v3`]/[`encode_with_plan_v2`]/
//! [`encode_with_plan_v1`] still emit them for compatibility artifacts
//! (v1 rejects plans that chose a non-SZ codec anywhere, since it
//! cannot represent that).
//!
//! # Threading model
//!
//! Both directions parallelize at two levels — the paper's per-layer
//! multi-GPU encoding mapped onto the persistent worker pool
//! (`dsz_tensor::pool`; execution model in `docs/PARALLEL.md`), so no
//! thread is spawned on the encode or decode hot path:
//!
//! * **Across layers** — [`encode_with_plan`] compresses every layer's
//!   data/index streams through [`dsz_tensor::parallel::parallel_map`]
//!   (container serialization stays sequential, so the byte layout is
//!   deterministic for any worker count); [`decode_model`] first parses
//!   the container into zero-copy per-layer records, then decodes layers
//!   through the same work queue.
//! * **Within a layer** — the chunked SZ stream formats fan a single
//!   layer's (de)compression out across workers too (see
//!   `dsz_sz`'s codec docs), at the divided nested budget, so even
//!   single-layer workloads scale.
//!
//! [`DecodeTiming`] accumulates per-stage times *summed over layers* (they
//! overlap in wall-clock when layers decode concurrently); `wall_ms` is
//! the end-to-end elapsed time, so `wall_ms < lossless + sz + reconstruct`
//! is the signature of parallel decode.

// Containers are untrusted input: every malformed byte must surface as a
// `DeepSzError`, never a panic (`docs/ROBUSTNESS.md`).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::assessment::LayerAssessment;
use crate::codec::DataCodecKind;
use crate::optimizer::Plan;
use crate::DeepSzError;
use dsz_lossless::bits::{read_varint, write_varint};
use dsz_lossless::{fnv1a, CodecError, Fnv1a, LosslessKind};
use dsz_nn::Network;
use dsz_sparse::PairArray;
use dsz_tensor::parallel::parallel_map;
use std::time::Instant;

pub(crate) const MAGIC: &[u8; 4] = b"DSZM";
pub(crate) const VERSION_V1: u8 = 1;
pub(crate) const VERSION_V2: u8 = 2;
pub(crate) const VERSION_V3: u8 = 3;
pub(crate) const VERSION_V4: u8 = 4;
/// Closing magic of the v3/v4 trailer; its presence distinguishes "a
/// container with a damaged tail" from "not a checksummed container at
/// all" in error messages only — every integrity decision rests on the
/// checksums.
pub(crate) const TRAILER_MAGIC_V3: &[u8; 4] = b"DSZ3";
pub(crate) const TRAILER_MAGIC_V4: &[u8; 4] = b"DSZ4";
/// Fixed v3/v4 trailer: `footer_start u64 LE | container_fnv u64 LE |
/// closing magic`.
pub(crate) const TRAILER_LEN: usize = 20;
/// v4 records start on this boundary (zero padding before each record) so
/// a seekable reader's per-layer slices are kernel-page friendly.
pub(crate) const RECORD_ALIGN: usize = 64;
/// Upper bound on `rows × cols` accepted from a container record — a
/// corrupt dim field must not size an allocation. 2^28 f32 elements is a
/// 1 GiB dense layer, ~2.6× the largest real fc layer (VGG-16 fc6).
const MAX_LAYER_ELEMS: usize = 1 << 28;

/// Bounds-checked little-endian `u64` read at byte offset `off`.
#[inline]
pub(crate) fn read_u64_le(bytes: &[u8], off: usize) -> Option<u64> {
    let b: [u8; 8] = bytes.get(off..off.checked_add(8)?)?.try_into().ok()?;
    Some(u64::from_le_bytes(b))
}

/// Reads a varint that will be used as a length/offset/count, rejecting
/// values that do not fit `usize` instead of truncating them with `as`
/// (on 32-bit hosts an unchecked cast would let a 2^32+k length alias a
/// small one and slip past the span cross-checks).
pub(crate) fn read_varint_len(
    region: &[u8],
    pos: &mut usize,
    what: &'static str,
) -> Result<usize, DeepSzError> {
    let v = read_varint(region, pos)?;
    usize::try_from(v)
        .map_err(|_| DeepSzError::BadContainer(format!("{what} {v} overflows this host's usize")))
}

/// FNV-1a over `tag` (little-endian) followed by `bytes` — the v4
/// per-record digest. Folding the record's footer ordinal into the hash
/// means a footer entry copied from another position cannot vouch for a
/// record it was not computed over.
pub(crate) fn fnv1a_tagged(tag: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in tag.to_le_bytes().iter().chain(bytes) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Shorthand for a [`DeepSzError::Corrupt`] at a named decode stage.
pub(crate) fn corrupt(
    layer: &str,
    stage: &'static str,
    detail: impl std::fmt::Display,
) -> DeepSzError {
    DeepSzError::Corrupt {
        layer: layer.to_string(),
        stage,
        detail: detail.to_string(),
    }
}

/// A serialized compressed model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedModel {
    /// Container bytes.
    pub bytes: Vec<u8>,
}

/// Per-layer record of an encode run.
#[derive(Debug, Clone)]
pub struct EncodedLayerReport {
    /// Layer name.
    pub name: String,
    /// Chosen error bound.
    pub eb: f64,
    /// Lossy codec the data array was compressed with.
    pub data_codec: DataCodecKind,
    /// Lossless codec picked for the index array.
    pub index_codec: LosslessKind,
    /// Compressed data-stream bytes.
    pub data_bytes: usize,
    /// Lossless index-stream bytes.
    pub index_bytes: usize,
    /// Dense (uncompressed f32) bytes of this layer.
    pub dense_bytes: usize,
    /// Two-array (40-bit/entry) bytes after pruning.
    pub pair_bytes: usize,
}

impl EncodedLayerReport {
    /// Compression ratio vs the dense layer.
    pub fn ratio(&self) -> f64 {
        self.dense_bytes as f64 / (self.data_bytes + self.index_bytes).max(1) as f64
    }
}

/// Summary of an encode run.
#[derive(Debug, Clone)]
pub struct EncodeReport {
    /// Per-layer records, in fc order.
    pub layers: Vec<EncodedLayerReport>,
    /// Container size in bytes.
    pub total_bytes: usize,
    /// Sum of dense fc bytes.
    pub total_dense_bytes: usize,
    /// Wall-clock time of final SZ compression (ms); layers compress in
    /// parallel, so this is less than the summed per-layer cost.
    pub compress_ms: f64,
    /// Peak bytes the encode pipeline held in finished-but-unwritten
    /// buffers (chunk slots, retained quantized units, assembled records),
    /// by buffer-ring ledger accounting — the high-water mark of the
    /// [`crate::encode_stream::EncodeStreamConfig::encode_bytes_budget`]
    /// ledger (conservative reservations, so an upper bound on real heap
    /// use by those buffers).
    pub peak_buffered_bytes: usize,
    /// Fraction of container-write time that overlapped layer compression
    /// still in flight, in `[0, 1]`. Zero under serial execution or a
    /// bounded budget (which serializes layers by design).
    pub io_overlap_ratio: f64,
}

impl EncodeReport {
    /// Overall fc compression ratio.
    pub fn ratio(&self) -> f64 {
        self.total_dense_bytes as f64 / self.total_bytes.max(1) as f64
    }
}

/// Encodes the assessed layers according to `plan` into a DSZM v4
/// container, compressing each layer's data array with the plan's chosen
/// codec (SZ layers use the default configuration: the chunked v4 stream
/// format with one shared Huffman table per layer and adaptive chunk
/// sizing).
///
/// Per-layer compression (lossy data stream + lossless index stream)
/// runs in parallel across a work queue; serialization of the finished
/// blobs is sequential, so container bytes are deterministic regardless
/// of worker count.
pub fn encode_with_plan(
    assessments: &[LayerAssessment],
    plan: &Plan,
) -> Result<(CompressedModel, EncodeReport), DeepSzError> {
    encode_with_plan_config(assessments, plan, &dsz_sz::SzConfig::default())
}

/// [`encode_with_plan`] with an explicit SZ configuration, so callers can
/// pin a stream format (e.g. [`dsz_sz::SzFormat::V2`] for compatibility
/// artifacts or A/B size comparisons) or a fixed chunk size for the
/// layers whose chosen codec is SZ. The decode path needs no matching
/// knob — every data stream is self-describing, and the container's
/// per-layer codec id picks the decoder.
pub fn encode_with_plan_config(
    assessments: &[LayerAssessment],
    plan: &Plan,
    sz: &dsz_sz::SzConfig,
) -> Result<(CompressedModel, EncodeReport), DeepSzError> {
    encode_container(assessments, plan, sz, VERSION_V4)
}

/// Emits the DSZM v3 container layout — the v4 layout minus record
/// alignment and the per-record digest — for compatibility artifacts and
/// the golden-bytes tests that pin v3 decode. Prefer the default
/// ([`encode_with_plan`]): v3's footer checksums cover only the data/index
/// blobs, so the seekable reader's *per-layer* verification is weaker on
/// v3 than on v4 (whole-container verification is equally strong on both;
/// see `docs/ROBUSTNESS.md`).
pub fn encode_with_plan_v3(
    assessments: &[LayerAssessment],
    plan: &Plan,
    sz: &dsz_sz::SzConfig,
) -> Result<(CompressedModel, EncodeReport), DeepSzError> {
    encode_container(assessments, plan, sz, VERSION_V3)
}

/// Emits the DSZM v2 container layout — the v3 record layout minus the
/// checksummed footer/trailer — for compatibility artifacts, size A/Bs
/// (the bench tracks the v3-over-v2 integrity tax), and the golden-bytes
/// tests that pin v2 decode. Prefer the default ([`encode_with_plan`]):
/// v2 containers carry no integrity information, so storage corruption
/// can surface as plausible-but-wrong weights instead of an error.
pub fn encode_with_plan_v2(
    assessments: &[LayerAssessment],
    plan: &Plan,
    sz: &dsz_sz::SzConfig,
) -> Result<(CompressedModel, EncodeReport), DeepSzError> {
    encode_container(assessments, plan, sz, VERSION_V2)
}

/// Emits the legacy DSZM v1 container layout (no per-layer codec id) for
/// compatibility artifacts and the golden-bytes tests that pin v1 decode.
/// Errors if any layer's chosen codec is not SZ — v1 records cannot name
/// a codec, so SZ is the only thing they can carry. For the same reason
/// an [`dsz_sz::SzFormat::V4`] configuration is clamped to
/// [`dsz_sz::SzFormat::V3`]: the v1 container era predates the v4
/// stream, so its readers reject v4 layers, and a compatibility artifact
/// they cannot decode would be useless.
pub fn encode_with_plan_v1(
    assessments: &[LayerAssessment],
    plan: &Plan,
    sz: &dsz_sz::SzConfig,
) -> Result<(CompressedModel, EncodeReport), DeepSzError> {
    if let Some(c) = plan.layers.iter().find(|c| c.codec != DataCodecKind::Sz) {
        return Err(DeepSzError::BadContainer(format!(
            "DSZM v1 cannot represent codec {} chosen for layer {}; encode a v2 container",
            c.codec.name(),
            c.fc.name
        )));
    }
    let mut sz = *sz;
    if sz.format == dsz_sz::SzFormat::V4 {
        sz.format = dsz_sz::SzFormat::V3;
    }
    encode_container(assessments, plan, &sz, VERSION_V1)
}

/// Every encoder version now routes through the streaming engine
/// ([`crate::encode_stream`]) with an unbounded buffer budget, writing
/// into a `Vec` — the "thin materializing wrapper". The container bytes
/// are pinned bit-identical to the historical batch serializer by the
/// golden-bytes tests for all four container versions.
fn encode_container(
    assessments: &[LayerAssessment],
    plan: &Plan,
    sz: &dsz_sz::SzConfig,
    version: u8,
) -> Result<(CompressedModel, EncodeReport), DeepSzError> {
    let (bytes, report) = crate::encode_stream::encode_container_stream(
        assessments,
        plan,
        sz,
        &crate::encode_stream::EncodeStreamConfig::default(),
        version,
        Vec::new(),
    )?;
    Ok((CompressedModel { bytes }, report))
}

/// Zero padding source for v4 record alignment.
const ZERO_PAD: [u8; RECORD_ALIGN] = [0; RECORD_ALIGN];

/// Metadata of one layer record — everything except the two blobs.
pub(crate) struct RecordMeta<'a> {
    pub(crate) name: &'a str,
    pub(crate) layer_index: usize,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) eb: f64,
    pub(crate) data_codec: DataCodecKind,
    pub(crate) index_codec: LosslessKind,
}

/// Streams a DSZM container (any version) to a `std::io::Write`, with
/// the footer/trailer checksums accumulated incrementally as bytes are
/// emitted — no record `Vec` concatenation and no second pass over a
/// materialized buffer. The byte sequence is exactly the historical
/// batch serializer's: header, 64-byte-aligned records (v4), footer
/// index with per-record ordinal-tagged digests (v4), fixed trailer
/// (v3/v4). Memory held per record is only its two compressed blobs;
/// the footer bookkeeping is O(layers).
pub(crate) struct ContainerWriter<W: std::io::Write> {
    w: W,
    version: u8,
    /// Bytes emitted so far — record offsets and the footer offset.
    written: usize,
    /// Running whole-container digest (v3/v4 trailer).
    container_fnv: Fnv1a,
    /// Running ordinal-tagged digest of the record being written (v4).
    rec_fnv: Option<Fnv1a>,
    /// Per-record footer entries: offset, len, record/data/index digests.
    footer: Vec<(usize, usize, u64, u64, u64)>,
    /// Reused buffer for record header fields and the footer.
    scratch: Vec<u8>,
}

impl<W: std::io::Write> ContainerWriter<W> {
    /// Writes the container header and returns the writer.
    pub(crate) fn new(w: W, version: u8, n_layers: usize) -> Result<Self, DeepSzError> {
        let mut cw = Self {
            w,
            version,
            written: 0,
            container_fnv: Fnv1a::new(),
            rec_fnv: None,
            footer: Vec::with_capacity(n_layers),
            scratch: Vec::with_capacity(64),
        };
        let mut head = Vec::with_capacity(16);
        head.extend_from_slice(MAGIC);
        head.push(version);
        write_varint(&mut head, n_layers as u64);
        cw.emit(&head)?;
        Ok(cw)
    }

    /// Emits bytes, folding them into the running digests.
    fn emit(&mut self, bytes: &[u8]) -> Result<(), DeepSzError> {
        self.container_fnv.update(bytes);
        if let Some(h) = &mut self.rec_fnv {
            h.update(bytes);
        }
        self.written += bytes.len();
        self.w.write_all(bytes)?;
        Ok(())
    }

    /// Writes one layer record (alignment padding included) and files its
    /// footer entry. `data_fnv`/`idx_fnv` are the blob digests — computed
    /// upstream (by the encode pipeline's FNV tap while the blob was
    /// assembled) so the writer never re-walks blob bytes.
    pub(crate) fn write_record(
        &mut self,
        meta: &RecordMeta<'_>,
        data_blob: &[u8],
        data_fnv: u64,
        idx_blob: &[u8],
        idx_fnv: u64,
    ) -> Result<(), DeepSzError> {
        if self.version >= VERSION_V4 {
            // Zero-pad so the record starts on a 64-byte boundary: the
            // seekable reader's footer-driven slices become page-friendly
            // and never split a record across an alignment unit head.
            let pad = self.written.div_ceil(RECORD_ALIGN) * RECORD_ALIGN - self.written;
            self.emit(&ZERO_PAD[..pad])?;
            // The v4 per-record digest spans the record bytes (not the
            // padding), tagged with the record's footer ordinal.
            self.rec_fnv = Some(Fnv1a::with_tag(self.footer.len() as u64));
        }
        let record_start = self.written;
        let mut head = std::mem::take(&mut self.scratch);
        head.clear();
        write_varint(&mut head, meta.name.len() as u64);
        head.extend_from_slice(meta.name.as_bytes());
        write_varint(&mut head, meta.layer_index as u64);
        write_varint(&mut head, meta.rows as u64);
        write_varint(&mut head, meta.cols as u64);
        head.extend_from_slice(&meta.eb.to_le_bytes());
        if self.version >= VERSION_V2 {
            head.push(meta.data_codec.id());
        }
        head.push(meta.index_codec.id());
        write_varint(&mut head, data_blob.len() as u64);
        self.emit(&head)?;
        self.emit(data_blob)?;
        head.clear();
        write_varint(&mut head, idx_blob.len() as u64);
        self.emit(&head)?;
        self.emit(idx_blob)?;
        self.scratch = head;
        let rec_fnv = self.rec_fnv.take().map_or(0, |h| h.finish());
        if self.version >= VERSION_V3 {
            self.footer.push((
                record_start,
                self.written - record_start,
                rec_fnv,
                data_fnv,
                idx_fnv,
            ));
        }
        Ok(())
    }

    /// Writes the footer + trailer (v3/v4) and returns the inner writer
    /// and the total container length.
    pub(crate) fn finish(mut self) -> Result<(W, usize), DeepSzError> {
        if self.version >= VERSION_V3 {
            // Footer index (per-layer spans + checksums), then the fixed
            // trailer: footer offset, whole-container FNV over every byte
            // that precedes the checksum field, closing magic. v4 entries
            // add the per-record digest accumulated in `write_record` so
            // a seekable reader can verify one layer without touching the
            // rest. See `docs/FORMAT.md`.
            let footer_start = self.written as u64;
            let mut buf = std::mem::take(&mut self.scratch);
            buf.clear();
            for &(off, len, rec_fnv, data_fnv, idx_fnv) in &self.footer {
                write_varint(&mut buf, off as u64);
                write_varint(&mut buf, len as u64);
                if self.version >= VERSION_V4 {
                    buf.extend_from_slice(&rec_fnv.to_le_bytes());
                }
                buf.extend_from_slice(&data_fnv.to_le_bytes());
                buf.extend_from_slice(&idx_fnv.to_le_bytes());
            }
            buf.extend_from_slice(&footer_start.to_le_bytes());
            self.emit(&buf)?;
            // The container digest covers everything before its own field.
            let mut tail = [0u8; TRAILER_LEN - 8];
            tail[..8].copy_from_slice(&self.container_fnv.finish().to_le_bytes());
            tail[8..].copy_from_slice(if self.version >= VERSION_V4 {
                TRAILER_MAGIC_V4
            } else {
                TRAILER_MAGIC_V3
            });
            self.emit(&tail)?;
        }
        self.w.flush()?;
        Ok((self.w, self.written))
    }
}

/// One decoded fc layer.
#[derive(Debug, Clone)]
pub struct DecodedLayer {
    /// Layer name.
    pub name: String,
    /// Index into `Network::layers`.
    pub layer_index: usize,
    /// Reconstructed dense row-major weights.
    pub dense: Vec<f32>,
    /// Matrix rows.
    pub rows: usize,
    /// Matrix cols.
    pub cols: usize,
}

/// Wall-clock breakdown of a decode run (the paper's Fig. 7b stages).
///
/// Stage fields are summed across layers; layers decode concurrently, so
/// the per-stage sums can exceed `wall_ms` (they are CPU-time-like).
#[derive(Debug, Clone, Copy, Default)]
pub struct DecodeTiming {
    /// Lossless index-array decompression (ms, summed over layers).
    pub lossless_ms: f64,
    /// Lossy data-array decompression (ms, summed over layers) — the SZ
    /// or ZFP stage, per the layer's codec id.
    pub lossy_ms: f64,
    /// Sparse → dense matrix reconstruction (ms, summed over layers).
    pub reconstruct_ms: f64,
    /// End-to-end elapsed decode time (ms).
    pub wall_ms: f64,
}

impl DecodeTiming {
    /// Total per-stage decode time (ms, summed over layers).
    pub fn total_ms(&self) -> f64 {
        self.lossless_ms + self.lossy_ms + self.reconstruct_ms
    }
}

/// A zero-copy view of one layer's record inside a container.
pub(crate) struct RawLayerRecord<'a> {
    pub(crate) name: &'a str,
    pub(crate) layer_index: usize,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    /// Error bound the layer was encoded at. Metadata only — decode
    /// never consults it — but a re-serialization ([`rewrite_layer_data`])
    /// must carry it through unchanged.
    pub(crate) eb: f64,
    pub(crate) data_codec: DataCodecKind,
    pub(crate) codec: LosslessKind,
    pub(crate) data_blob: &'a [u8],
    pub(crate) idx_blob: &'a [u8],
}

/// Parses one layer record starting at `*pos` in `region`, advancing
/// `*pos` past it. Shared by the sequential container walk below and the
/// seekable reader (`crate::seek`), which hands in a single footer-sliced
/// span — both paths must accept exactly the same bytes.
pub(crate) fn parse_one_record<'a>(
    region: &'a [u8],
    pos: &mut usize,
    version: u8,
) -> Result<RawLayerRecord<'a>, DeepSzError> {
    let name_len = read_varint_len(region, pos, "name length")?;
    let name_end = pos.checked_add(name_len).ok_or(CodecError::Truncated)?;
    let name = std::str::from_utf8(region.get(*pos..name_end).ok_or(CodecError::Truncated)?)
        .map_err(|_| DeepSzError::BadContainer("bad layer name".into()))?;
    *pos = name_end;
    let layer_index = read_varint_len(region, pos, "layer index")?;
    let rows = read_varint_len(region, pos, "row count")?;
    let cols = read_varint_len(region, pos, "column count")?;
    match rows.checked_mul(cols) {
        Some(elems) if elems <= MAX_LAYER_ELEMS => {}
        _ => {
            return Err(corrupt(
                name,
                "validate",
                format!("dims {rows}x{cols} overflow or exceed the {MAX_LAYER_ELEMS}-element cap"),
            ))
        }
    }
    let eb_end = pos.checked_add(8).ok_or(CodecError::Truncated)?;
    let eb_bytes: [u8; 8] = region
        .get(*pos..eb_end)
        .ok_or(CodecError::Truncated)?
        .try_into()
        .map_err(|_| CodecError::Truncated)?;
    let eb = f64::from_le_bytes(eb_bytes);
    *pos = eb_end;
    let data_codec = if version >= VERSION_V2 {
        let id = *region.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        DataCodecKind::from_id(id)?
    } else {
        DataCodecKind::Sz
    };
    let codec = LosslessKind::from_id(*region.get(*pos).ok_or(CodecError::Truncated)?)?;
    *pos += 1;
    let data_len = read_varint_len(region, pos, "data blob length")?;
    let data_end = pos.checked_add(data_len).ok_or(CodecError::Truncated)?;
    let data_blob = region.get(*pos..data_end).ok_or(CodecError::Truncated)?;
    *pos = data_end;
    let idx_len = read_varint_len(region, pos, "index blob length")?;
    let idx_end = pos.checked_add(idx_len).ok_or(CodecError::Truncated)?;
    let idx_blob = region.get(*pos..idx_end).ok_or(CodecError::Truncated)?;
    *pos = idx_end;
    Ok(RawLayerRecord {
        name,
        layer_index,
        rows,
        cols,
        eb,
        data_codec,
        codec,
        data_blob,
        idx_blob,
    })
}

/// Advances `pos` to the next [`RECORD_ALIGN`] boundary, requiring every
/// skipped byte to be zero — the only thing allowed between v4 records.
pub(crate) fn skip_record_padding(region: &[u8], pos: &mut usize) -> Result<(), DeepSzError> {
    let aligned = pos
        .checked_add(RECORD_ALIGN - 1)
        .ok_or(CodecError::Truncated)?
        / RECORD_ALIGN
        * RECORD_ALIGN;
    let pad = region.get(*pos..aligned).ok_or(CodecError::Truncated)?;
    if pad.iter().any(|&b| b != 0) {
        return Err(DeepSzError::BadContainer(
            "nonzero bytes in record alignment padding".into(),
        ));
    }
    *pos = aligned;
    Ok(())
}

/// Parses the container framing into per-layer records without decoding
/// any payload (shared by [`decode_model`] and the streaming loader).
/// Dispatches on the container version byte: v1 records carry no data
/// codec id (SZ is implied), v2 records name their codec, v3 appends a
/// checksummed footer/trailer that is verified here — whole-container
/// FNV first, then per-record spans and blob checksums — *before* any
/// payload is handed to a decompressor, and v4 additionally aligns each
/// record to a 64-byte boundary and digests its full span
/// (`docs/FORMAT.md`).
pub(crate) fn parse_records(bytes: &[u8]) -> Result<Vec<RawLayerRecord<'_>>, DeepSzError> {
    if bytes.len() < 5 || &bytes[..4] != MAGIC {
        return Err(DeepSzError::BadContainer("bad magic".into()));
    }
    let version = bytes[4];
    if !(VERSION_V1..=VERSION_V4).contains(&version) {
        return Err(DeepSzError::BadContainer("unsupported version".into()));
    }

    // v3/v4: authenticate the whole byte string before trusting any field
    // in it. A container that fails here never reaches the record parser.
    let records_end = if version >= VERSION_V3 {
        let len = bytes.len();
        if len < 6 + TRAILER_LEN {
            return Err(DeepSzError::BadContainer(
                "checksummed container shorter than its trailer".into(),
            ));
        }
        let want_magic = if version >= VERSION_V4 {
            TRAILER_MAGIC_V4
        } else {
            TRAILER_MAGIC_V3
        };
        if &bytes[len - 4..] != want_magic {
            return Err(DeepSzError::BadContainer("trailer magic missing".into()));
        }
        let stored_fnv = read_u64_le(bytes, len - 12).ok_or(CodecError::Truncated)?;
        let actual_fnv = fnv1a(&bytes[..len - 12]);
        if stored_fnv != actual_fnv {
            return Err(corrupt(
                "<container>",
                "checksum",
                format!("container fnv mismatch: stored {stored_fnv:#018x}, computed {actual_fnv:#018x}"),
            ));
        }
        let footer_start = read_u64_le(bytes, len - TRAILER_LEN).ok_or(CodecError::Truncated)?;
        let footer_start = usize::try_from(footer_start)
            .map_err(|_| DeepSzError::BadContainer("footer offset overflows".into()))?;
        if footer_start < 6 || footer_start > len - TRAILER_LEN {
            return Err(DeepSzError::BadContainer(
                "footer offset out of bounds".into(),
            ));
        }
        footer_start
    } else {
        bytes.len()
    };
    let region = &bytes[..records_end];

    let mut pos = 5usize;
    let n_layers = read_varint_len(region, &mut pos, "layer count")?;
    // Each record occupies at least a dozen bytes; a count beyond the
    // container size is corrupt and must not size the allocation below.
    if n_layers > region.len() {
        return Err(DeepSzError::BadContainer(
            "layer count exceeds container size".into(),
        ));
    }
    let mut records = Vec::with_capacity(n_layers);
    // v3/v4 cross-check material: where each record actually landed.
    let mut spans: Vec<(usize, usize)> =
        Vec::with_capacity(if version >= VERSION_V3 { n_layers } else { 0 });
    for _ in 0..n_layers {
        if version >= VERSION_V4 {
            skip_record_padding(region, &mut pos)?;
        }
        let record_start = pos;
        let record = parse_one_record(region, &mut pos, version)?;
        if version >= VERSION_V3 {
            spans.push((record_start, pos - record_start));
        }
        records.push(record);
    }

    if version >= VERSION_V3 {
        // The records must fill the region exactly — trailing slack would
        // be bytes the footer never indexed.
        if pos != records_end {
            return Err(DeepSzError::BadContainer(
                "records do not end at the footer".into(),
            ));
        }
        // Footer: per record `offset varint | len varint | {rec_fnv u64
        // if v4} | data_fnv u64 | idx_fnv u64`, consumed exactly,
        // cross-checked against where the records actually parsed and what
        // their bytes hash to.
        let footer = &bytes[records_end..bytes.len() - TRAILER_LEN];
        let mut fpos = 0usize;
        for (ordinal, (rec, &(start, len))) in records.iter().zip(&spans).enumerate() {
            let f_off = read_varint_len(footer, &mut fpos, "footer record offset")?;
            let f_len = read_varint_len(footer, &mut fpos, "footer record length")?;
            let f_rec_fnv = if version >= VERSION_V4 {
                let v = read_u64_le(footer, fpos).ok_or(CodecError::Truncated)?;
                fpos += 8;
                Some(v)
            } else {
                None
            };
            let f_data_fnv = read_u64_le(footer, fpos).ok_or(CodecError::Truncated)?;
            fpos += 8;
            let f_idx_fnv = read_u64_le(footer, fpos).ok_or(CodecError::Truncated)?;
            fpos += 8;
            if f_off != start || f_len != len {
                return Err(corrupt(
                    rec.name,
                    "checksum",
                    format!(
                        "footer span {f_off}+{f_len} disagrees with parsed record at {start}+{len}"
                    ),
                ));
            }
            if let Some(want) = f_rec_fnv {
                if want != fnv1a_tagged(ordinal as u64, &bytes[start..start + len]) {
                    return Err(corrupt(rec.name, "checksum", "record span fnv mismatch"));
                }
            }
            if f_data_fnv != fnv1a(rec.data_blob) {
                return Err(corrupt(rec.name, "checksum", "data blob fnv mismatch"));
            }
            if f_idx_fnv != fnv1a(rec.idx_blob) {
                return Err(corrupt(rec.name, "checksum", "index blob fnv mismatch"));
            }
        }
        if fpos != footer.len() {
            return Err(DeepSzError::BadContainer(
                "footer has trailing bytes".into(),
            ));
        }
    }
    Ok(records)
}

/// Verifies a container's structural integrity without decompressing any
/// payload: framing, version dispatch, and — for v3 — the whole-container
/// FNV-1a, footer spans, and per-blob checksums. Returns the layer count.
/// For v1/v2 containers (no integrity information on the wire) this only
/// proves the framing parses. Cost is one linear hash pass over the
/// bytes; the bench reports it as `checksum_verify_ms`.
pub fn verify_container(model: &CompressedModel) -> Result<usize, DeepSzError> {
    parse_records(&model.bytes).map(|r| r.len())
}

/// Re-serializes `container` with record `ordinal`'s **data blob**
/// replaced by `mutate`'s output, recomputing every checksum (per-blob
/// FNVs, v4 record-span digests, the whole-container trailer FNV) so the
/// result is *authentically* corrupt: its framing and checksums verify,
/// but the stomped blob fails to decode. This is the fixture generator
/// for degraded-mode and chaos tests — naive byte-stomping of a v3/v4
/// container trips the trailer FNV in [`parse_records`] and never reaches
/// the decoder, which is exactly the wrong failure to exercise.
///
/// The rewritten container keeps the input's version byte and record
/// order; every other record is carried through bit-identically.
pub fn rewrite_layer_data(
    container: &[u8],
    ordinal: usize,
    mutate: impl FnOnce(&mut Vec<u8>),
) -> Result<Vec<u8>, DeepSzError> {
    let records = parse_records(container)?;
    if ordinal >= records.len() {
        return Err(DeepSzError::BadContainer(format!(
            "rewrite target ordinal {ordinal} out of range ({} records)",
            records.len()
        )));
    }
    // parse_records validated the header, so the version byte is present.
    let version = container[4];
    let mut w = ContainerWriter::new(Vec::new(), version, records.len())?;
    let mut mutate = Some(mutate);
    for (i, r) in records.iter().enumerate() {
        let mut data = r.data_blob.to_vec();
        if i == ordinal {
            if let Some(m) = mutate.take() {
                m(&mut data);
            }
        }
        let meta = RecordMeta {
            name: r.name,
            layer_index: r.layer_index,
            rows: r.rows,
            cols: r.cols,
            eb: r.eb,
            data_codec: r.data_codec,
            index_codec: r.codec,
        };
        w.write_record(&meta, &data, fnv1a(&data), r.idx_blob, fnv1a(r.idx_blob))?;
    }
    let (bytes, _) = w.finish()?;
    Ok(bytes)
}

/// Decodes one parsed record through the three stages, returning the layer
/// plus `(lossless, lossy, reconstruct)` stage times in ms. The data
/// stage dispatches through the [`crate::codec::DataCodec`] registry on the record's
/// codec id, so it is uniform across SZ and ZFP layers.
///
/// Every failure is a [`DeepSzError::Corrupt`] naming the layer and the
/// stage that rejected it. Declared stream sizes are cross-checked
/// against the record's dims *before* any decompression runs, so a
/// mutated length field cannot size an allocation or burn decode time.
pub(crate) fn decode_record(
    r: &RawLayerRecord<'_>,
) -> Result<(DecodedLayer, [f64; 3]), DeepSzError> {
    let elems = match r.rows.checked_mul(r.cols) {
        Some(e) if e <= MAX_LAYER_ELEMS => e,
        _ => {
            return Err(corrupt(
                r.name,
                "validate",
                format!(
                    "dims {}x{} overflow or exceed the {MAX_LAYER_ELEMS}-element cap",
                    r.rows, r.cols
                ),
            ))
        }
    };
    // Condensed entries = nonzeros + zero-run pads (at most one pad per
    // 255-element gap), so a valid record never declares more than this.
    let max_entries = elems + elems / 255 + 1;
    let data_elems = r
        .data_codec
        .codec()
        .declared_elems(r.data_blob)
        .map_err(|e| corrupt(r.name, "cross-check", format!("data stream header: {e}")))?;
    let idx_elems = r
        .codec
        .codec()
        .declared_len(r.idx_blob)
        .map_err(|e| corrupt(r.name, "cross-check", format!("index stream header: {e}")))?;
    if data_elems != idx_elems {
        return Err(corrupt(
            r.name,
            "cross-check",
            format!("data stream declares {data_elems} elements, index stream {idx_elems}"),
        ));
    }
    if data_elems > max_entries {
        return Err(corrupt(
            r.name,
            "cross-check",
            format!(
                "{data_elems} declared entries exceed the {max_entries}-entry cap of a {}x{} layer",
                r.rows, r.cols
            ),
        ));
    }

    let t = Instant::now();
    let index = r
        .codec
        .codec()
        .decompress(r.idx_blob)
        .map_err(|e| corrupt(r.name, "lossless-index", e))?;
    let lossless_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let data = r
        .data_codec
        .codec()
        .decode(r.data_blob)
        .map_err(|e| corrupt(r.name, "lossy-data", e))?;
    let lossy_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    if data.len() != index.len() {
        return Err(corrupt(
            r.name,
            "cross-check",
            format!(
                "decoded {} data elements but {} index entries",
                data.len(),
                index.len()
            ),
        ));
    }
    let pair = PairArray {
        rows: r.rows,
        cols: r.cols,
        data,
        index,
    };
    let dense = pair
        .to_dense()
        .map_err(|e| corrupt(r.name, "reconstruct", e))?;
    let reconstruct_ms = t.elapsed().as_secs_f64() * 1e3;

    Ok((
        DecodedLayer {
            name: r.name.to_string(),
            layer_index: r.layer_index,
            dense,
            rows: r.rows,
            cols: r.cols,
        },
        [lossless_ms, lossy_ms, reconstruct_ms],
    ))
}

/// Decodes a container produced by [`encode_with_plan`].
///
/// The container is parsed into zero-copy records first; layers then
/// decode in parallel through a work queue (and the chunked SZ streams
/// parallelize internally as well). Results keep container order.
pub fn decode_model(
    model: &CompressedModel,
) -> Result<(Vec<DecodedLayer>, DecodeTiming), DeepSzError> {
    let t0 = Instant::now();
    let records = parse_records(&model.bytes)?;
    let results = parallel_map(&records, decode_record);
    let mut layers = Vec::with_capacity(records.len());
    let mut timing = DecodeTiming::default();
    for r in results {
        let (layer, [lossless, lossy, reconstruct]) = r?;
        timing.lossless_ms += lossless;
        timing.lossy_ms += lossy;
        timing.reconstruct_ms += reconstruct;
        layers.push(layer);
    }
    timing.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    Ok((layers, timing))
}

/// Installs decoded fc layers into `net` (matched by layer index, with the
/// name and shape cross-checked). Takes the layers by value so each dense
/// buffer moves into the network instead of being copied.
pub fn apply_decoded(net: &mut Network, layers: Vec<DecodedLayer>) -> Result<(), DeepSzError> {
    // Validate everything first so a mismatch can't leave `net` half-updated.
    for l in &layers {
        if l.layer_index >= net.layers.len() {
            return Err(DeepSzError::BadContainer(format!(
                "layer index {} out of range",
                l.layer_index
            )));
        }
        let dsz_nn::Layer::Dense(d) = &net.layers[l.layer_index] else {
            return Err(DeepSzError::BadContainer(format!(
                "network layer {} is not fully connected",
                l.layer_index
            )));
        };
        if d.name != l.name || d.w.rows != l.rows || d.w.cols != l.cols {
            return Err(DeepSzError::BadContainer(format!(
                "layer {} does not match network layer {} ({}×{})",
                l.name, d.name, d.w.rows, d.w.cols
            )));
        }
    }
    for l in layers {
        let dsz_nn::Layer::Dense(d) = &mut net.layers[l.layer_index] else {
            unreachable!("validated above");
        };
        d.w.data = l.dense;
    }
    Ok(())
}
