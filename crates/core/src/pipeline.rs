//! Compressed model generation and decoding — step 4 (§3.5).
//!
//! Encoding takes the assessment + plan and emits a self-describing
//! **DSZM v2** container: per fc layer, the `data` array compressed with
//! the plan's chosen [`crate::codec::DataCodec`] at the chosen error bound (the
//! one-byte codec id is recorded in the layer record), and the
//! best-fit-lossless-compressed `index` array. Decoding reverses the
//! stages — lossless decompression, lossy data decompression through the
//! codec registry, sparse-matrix reconstruction — and reports the time
//! spent in each, which is exactly the breakdown of the paper's
//! Figure 7b.
//!
//! Legacy DSZM v1 containers (no codec id; data is always an SZ stream)
//! keep decoding via the version-byte dispatch, mirroring the SZ
//! v1/v2/v3/v4 stream precedent; [`encode_with_plan_v1`] still emits
//! them for compatibility artifacts (and rejects plans that chose a
//! non-SZ codec anywhere, since v1 cannot represent that).
//!
//! # Threading model
//!
//! Both directions parallelize at two levels — the paper's per-layer
//! multi-GPU encoding mapped onto the persistent worker pool
//! (`dsz_tensor::pool`; execution model in `docs/PARALLEL.md`), so no
//! thread is spawned on the encode or decode hot path:
//!
//! * **Across layers** — [`encode_with_plan`] compresses every layer's
//!   data/index streams through [`dsz_tensor::parallel::parallel_map`]
//!   (container serialization stays sequential, so the byte layout is
//!   deterministic for any worker count); [`decode_model`] first parses
//!   the container into zero-copy per-layer records, then decodes layers
//!   through the same work queue.
//! * **Within a layer** — the chunked SZ stream formats fan a single
//!   layer's (de)compression out across workers too (see
//!   `dsz_sz`'s codec docs), at the divided nested budget, so even
//!   single-layer workloads scale.
//!
//! [`DecodeTiming`] accumulates per-stage times *summed over layers* (they
//! overlap in wall-clock when layers decode concurrently); `wall_ms` is
//! the end-to-end elapsed time, so `wall_ms < lossless + sz + reconstruct`
//! is the signature of parallel decode.

use crate::assessment::LayerAssessment;
use crate::codec::DataCodecKind;
use crate::optimizer::Plan;
use crate::DeepSzError;
use dsz_lossless::bits::{read_varint, write_varint};
use dsz_lossless::{CodecError, LosslessKind};
use dsz_nn::Network;
use dsz_sparse::PairArray;
use dsz_sz::ErrorBound;
use dsz_tensor::parallel::parallel_map;
use std::time::Instant;

const MAGIC: &[u8; 4] = b"DSZM";
const VERSION_V1: u8 = 1;
const VERSION_V2: u8 = 2;

/// A serialized compressed model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedModel {
    /// Container bytes.
    pub bytes: Vec<u8>,
}

/// Per-layer record of an encode run.
#[derive(Debug, Clone)]
pub struct EncodedLayerReport {
    /// Layer name.
    pub name: String,
    /// Chosen error bound.
    pub eb: f64,
    /// Lossy codec the data array was compressed with.
    pub data_codec: DataCodecKind,
    /// Lossless codec picked for the index array.
    pub index_codec: LosslessKind,
    /// Compressed data-stream bytes.
    pub data_bytes: usize,
    /// Lossless index-stream bytes.
    pub index_bytes: usize,
    /// Dense (uncompressed f32) bytes of this layer.
    pub dense_bytes: usize,
    /// Two-array (40-bit/entry) bytes after pruning.
    pub pair_bytes: usize,
}

impl EncodedLayerReport {
    /// Compression ratio vs the dense layer.
    pub fn ratio(&self) -> f64 {
        self.dense_bytes as f64 / (self.data_bytes + self.index_bytes).max(1) as f64
    }
}

/// Summary of an encode run.
#[derive(Debug, Clone)]
pub struct EncodeReport {
    /// Per-layer records, in fc order.
    pub layers: Vec<EncodedLayerReport>,
    /// Container size in bytes.
    pub total_bytes: usize,
    /// Sum of dense fc bytes.
    pub total_dense_bytes: usize,
    /// Wall-clock time of final SZ compression (ms); layers compress in
    /// parallel, so this is less than the summed per-layer cost.
    pub compress_ms: f64,
}

impl EncodeReport {
    /// Overall fc compression ratio.
    pub fn ratio(&self) -> f64 {
        self.total_dense_bytes as f64 / self.total_bytes.max(1) as f64
    }
}

/// Encodes the assessed layers according to `plan` into a DSZM v2
/// container, compressing each layer's data array with the plan's chosen
/// codec (SZ layers use the default configuration: the chunked v4 stream
/// format with one shared Huffman table per layer and adaptive chunk
/// sizing).
///
/// Per-layer compression (lossy data stream + lossless index stream)
/// runs in parallel across a work queue; serialization of the finished
/// blobs is sequential, so container bytes are deterministic regardless
/// of worker count.
pub fn encode_with_plan(
    assessments: &[LayerAssessment],
    plan: &Plan,
) -> Result<(CompressedModel, EncodeReport), DeepSzError> {
    encode_with_plan_config(assessments, plan, &dsz_sz::SzConfig::default())
}

/// [`encode_with_plan`] with an explicit SZ configuration, so callers can
/// pin a stream format (e.g. [`dsz_sz::SzFormat::V2`] for compatibility
/// artifacts or A/B size comparisons) or a fixed chunk size for the
/// layers whose chosen codec is SZ. The decode path needs no matching
/// knob — every data stream is self-describing, and the container's
/// per-layer codec id picks the decoder.
pub fn encode_with_plan_config(
    assessments: &[LayerAssessment],
    plan: &Plan,
    sz: &dsz_sz::SzConfig,
) -> Result<(CompressedModel, EncodeReport), DeepSzError> {
    encode_container(assessments, plan, sz, VERSION_V2)
}

/// Emits the legacy DSZM v1 container layout (no per-layer codec id) for
/// compatibility artifacts and the golden-bytes tests that pin v1 decode.
/// Errors if any layer's chosen codec is not SZ — v1 records cannot name
/// a codec, so SZ is the only thing they can carry. For the same reason
/// an [`dsz_sz::SzFormat::V4`] configuration is clamped to
/// [`dsz_sz::SzFormat::V3`]: the v1 container era predates the v4
/// stream, so its readers reject v4 layers, and a compatibility artifact
/// they cannot decode would be useless.
pub fn encode_with_plan_v1(
    assessments: &[LayerAssessment],
    plan: &Plan,
    sz: &dsz_sz::SzConfig,
) -> Result<(CompressedModel, EncodeReport), DeepSzError> {
    if let Some(c) = plan.layers.iter().find(|c| c.codec != DataCodecKind::Sz) {
        return Err(DeepSzError::BadContainer(format!(
            "DSZM v1 cannot represent codec {} chosen for layer {}; encode a v2 container",
            c.codec.name(),
            c.fc.name
        )));
    }
    let mut sz = *sz;
    if sz.format == dsz_sz::SzFormat::V4 {
        sz.format = dsz_sz::SzFormat::V3;
    }
    encode_container(assessments, plan, &sz, VERSION_V1)
}

fn encode_container(
    assessments: &[LayerAssessment],
    plan: &Plan,
    sz: &dsz_sz::SzConfig,
    version: u8,
) -> Result<(CompressedModel, EncodeReport), DeepSzError> {
    assert_eq!(
        assessments.len(),
        plan.layers.len(),
        "plan/assessment mismatch"
    );
    let t0 = Instant::now();

    let jobs: Vec<(&LayerAssessment, f64, DataCodecKind)> = assessments
        .iter()
        .zip(&plan.layers)
        .map(|(a, c)| (a, c.eb, c.codec))
        .collect();
    type LayerBlobs = Result<(Vec<u8>, Vec<u8>), DeepSzError>;
    let blobs: Vec<LayerBlobs> = parallel_map(&jobs, |&(a, eb, kind)| {
        let data_blob = kind
            .instance(sz)
            .encode(&a.pair.data, ErrorBound::Abs(eb))?;
        let idx_blob = a.index_codec.codec().compress(&a.pair.index);
        Ok((data_blob, idx_blob))
    });

    let mut bytes = Vec::new();
    bytes.extend_from_slice(MAGIC);
    bytes.push(version);
    write_varint(&mut bytes, plan.layers.len() as u64);

    let mut reports = Vec::with_capacity(plan.layers.len());
    let mut total_dense = 0usize;
    for ((a, c), blob) in assessments.iter().zip(&plan.layers).zip(blobs) {
        let (data_blob, idx_blob) = blob?;
        write_varint(&mut bytes, a.fc.name.len() as u64);
        bytes.extend_from_slice(a.fc.name.as_bytes());
        write_varint(&mut bytes, a.fc.layer_index as u64);
        write_varint(&mut bytes, a.pair.rows as u64);
        write_varint(&mut bytes, a.pair.cols as u64);
        bytes.extend_from_slice(&c.eb.to_le_bytes());
        if version >= VERSION_V2 {
            bytes.push(c.codec.id());
        }
        bytes.push(a.index_codec.id());
        write_varint(&mut bytes, data_blob.len() as u64);
        bytes.extend_from_slice(&data_blob);
        write_varint(&mut bytes, idx_blob.len() as u64);
        bytes.extend_from_slice(&idx_blob);

        total_dense += a.pair.dense_bytes();
        reports.push(EncodedLayerReport {
            name: a.fc.name.clone(),
            eb: c.eb,
            data_codec: c.codec,
            index_codec: a.index_codec,
            data_bytes: data_blob.len(),
            index_bytes: idx_blob.len(),
            dense_bytes: a.pair.dense_bytes(),
            pair_bytes: a.pair.size_bytes(),
        });
    }
    let total = bytes.len();
    Ok((
        CompressedModel { bytes },
        EncodeReport {
            layers: reports,
            total_bytes: total,
            total_dense_bytes: total_dense,
            compress_ms: t0.elapsed().as_secs_f64() * 1e3,
        },
    ))
}

/// One decoded fc layer.
#[derive(Debug, Clone)]
pub struct DecodedLayer {
    /// Layer name.
    pub name: String,
    /// Index into `Network::layers`.
    pub layer_index: usize,
    /// Reconstructed dense row-major weights.
    pub dense: Vec<f32>,
    /// Matrix rows.
    pub rows: usize,
    /// Matrix cols.
    pub cols: usize,
}

/// Wall-clock breakdown of a decode run (the paper's Fig. 7b stages).
///
/// Stage fields are summed across layers; layers decode concurrently, so
/// the per-stage sums can exceed `wall_ms` (they are CPU-time-like).
#[derive(Debug, Clone, Copy, Default)]
pub struct DecodeTiming {
    /// Lossless index-array decompression (ms, summed over layers).
    pub lossless_ms: f64,
    /// Lossy data-array decompression (ms, summed over layers) — the SZ
    /// or ZFP stage, per the layer's codec id.
    pub lossy_ms: f64,
    /// Sparse → dense matrix reconstruction (ms, summed over layers).
    pub reconstruct_ms: f64,
    /// End-to-end elapsed decode time (ms).
    pub wall_ms: f64,
}

impl DecodeTiming {
    /// Total per-stage decode time (ms, summed over layers).
    pub fn total_ms(&self) -> f64 {
        self.lossless_ms + self.lossy_ms + self.reconstruct_ms
    }
}

/// A zero-copy view of one layer's record inside a container.
pub(crate) struct RawLayerRecord<'a> {
    pub(crate) name: &'a str,
    pub(crate) layer_index: usize,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) data_codec: DataCodecKind,
    pub(crate) codec: LosslessKind,
    pub(crate) data_blob: &'a [u8],
    pub(crate) idx_blob: &'a [u8],
}

/// Parses the container framing into per-layer records without decoding
/// any payload (shared by [`decode_model`] and the streaming loader).
/// Dispatches on the container version byte: v1 records carry no data
/// codec id (SZ is implied), v2 records name their codec.
pub(crate) fn parse_records(bytes: &[u8]) -> Result<Vec<RawLayerRecord<'_>>, DeepSzError> {
    if bytes.len() < 5 || &bytes[..4] != MAGIC {
        return Err(DeepSzError::BadContainer("bad magic".into()));
    }
    let version = bytes[4];
    if !(VERSION_V1..=VERSION_V2).contains(&version) {
        return Err(DeepSzError::BadContainer("unsupported version".into()));
    }
    let mut pos = 5usize;
    let n_layers = read_varint(bytes, &mut pos)? as usize;
    let mut records = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let name_len = read_varint(bytes, &mut pos)? as usize;
        let name_end = pos.checked_add(name_len).ok_or(CodecError::Truncated)?;
        let name = std::str::from_utf8(bytes.get(pos..name_end).ok_or(CodecError::Truncated)?)
            .map_err(|_| DeepSzError::BadContainer("bad layer name".into()))?;
        pos = name_end;
        let layer_index = read_varint(bytes, &mut pos)? as usize;
        let rows = read_varint(bytes, &mut pos)? as usize;
        let cols = read_varint(bytes, &mut pos)? as usize;
        let _eb = f64::from_le_bytes(
            bytes
                .get(pos..pos + 8)
                .ok_or(CodecError::Truncated)?
                .try_into()
                .expect("len 8"),
        );
        pos += 8;
        let data_codec = if version >= VERSION_V2 {
            let id = *bytes.get(pos).ok_or(CodecError::Truncated)?;
            pos += 1;
            DataCodecKind::from_id(id)?
        } else {
            DataCodecKind::Sz
        };
        let codec = LosslessKind::from_id(*bytes.get(pos).ok_or(CodecError::Truncated)?)?;
        pos += 1;
        let data_len = read_varint(bytes, &mut pos)? as usize;
        let data_end = pos.checked_add(data_len).ok_or(CodecError::Truncated)?;
        let data_blob = bytes.get(pos..data_end).ok_or(CodecError::Truncated)?;
        pos = data_end;
        let idx_len = read_varint(bytes, &mut pos)? as usize;
        let idx_end = pos.checked_add(idx_len).ok_or(CodecError::Truncated)?;
        let idx_blob = bytes.get(pos..idx_end).ok_or(CodecError::Truncated)?;
        pos = idx_end;
        records.push(RawLayerRecord {
            name,
            layer_index,
            rows,
            cols,
            data_codec,
            codec,
            data_blob,
            idx_blob,
        });
    }
    Ok(records)
}

/// Decodes one parsed record through the three stages, returning the layer
/// plus `(lossless, lossy, reconstruct)` stage times in ms. The data
/// stage dispatches through the [`crate::codec::DataCodec`] registry on the record's
/// codec id, so it is uniform across SZ and ZFP layers.
pub(crate) fn decode_record(
    r: &RawLayerRecord<'_>,
) -> Result<(DecodedLayer, [f64; 3]), DeepSzError> {
    let t = Instant::now();
    let index = r.codec.codec().decompress(r.idx_blob)?;
    let lossless_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let data = r.data_codec.codec().decode(r.data_blob)?;
    let lossy_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    if data.len() != index.len() {
        return Err(DeepSzError::BadContainer(
            "data/index length mismatch".into(),
        ));
    }
    let pair = PairArray {
        rows: r.rows,
        cols: r.cols,
        data,
        index,
    };
    let dense = pair.to_dense()?;
    let reconstruct_ms = t.elapsed().as_secs_f64() * 1e3;

    Ok((
        DecodedLayer {
            name: r.name.to_string(),
            layer_index: r.layer_index,
            dense,
            rows: r.rows,
            cols: r.cols,
        },
        [lossless_ms, lossy_ms, reconstruct_ms],
    ))
}

/// Decodes a container produced by [`encode_with_plan`].
///
/// The container is parsed into zero-copy records first; layers then
/// decode in parallel through a work queue (and the chunked SZ streams
/// parallelize internally as well). Results keep container order.
pub fn decode_model(
    model: &CompressedModel,
) -> Result<(Vec<DecodedLayer>, DecodeTiming), DeepSzError> {
    let t0 = Instant::now();
    let records = parse_records(&model.bytes)?;
    let results = parallel_map(&records, decode_record);
    let mut layers = Vec::with_capacity(records.len());
    let mut timing = DecodeTiming::default();
    for r in results {
        let (layer, [lossless, lossy, reconstruct]) = r?;
        timing.lossless_ms += lossless;
        timing.lossy_ms += lossy;
        timing.reconstruct_ms += reconstruct;
        layers.push(layer);
    }
    timing.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    Ok((layers, timing))
}

/// Installs decoded fc layers into `net` (matched by layer index, with the
/// name and shape cross-checked). Takes the layers by value so each dense
/// buffer moves into the network instead of being copied.
pub fn apply_decoded(net: &mut Network, layers: Vec<DecodedLayer>) -> Result<(), DeepSzError> {
    // Validate everything first so a mismatch can't leave `net` half-updated.
    for l in &layers {
        if l.layer_index >= net.layers.len() {
            return Err(DeepSzError::BadContainer(format!(
                "layer index {} out of range",
                l.layer_index
            )));
        }
        let dsz_nn::Layer::Dense(d) = &net.layers[l.layer_index] else {
            return Err(DeepSzError::BadContainer(format!(
                "network layer {} is not fully connected",
                l.layer_index
            )));
        };
        if d.name != l.name || d.w.rows != l.rows || d.w.cols != l.cols {
            return Err(DeepSzError::BadContainer(format!(
                "layer {} does not match network layer {} ({}×{})",
                l.name, d.name, d.w.rows, d.w.cols
            )));
        }
    }
    for l in layers {
        let dsz_nn::Layer::Dense(d) = &mut net.layers[l.layer_index] else {
            unreachable!("validated above");
        };
        d.w.data = l.dense;
    }
    Ok(())
}
