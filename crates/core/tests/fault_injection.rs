//! Deterministic fault-injection campaign over every serialized format
//! generation (`docs/ROBUSTNESS.md`).
//!
//! For each generation — SZ streams v1–v4, DSZM containers v1–v4 — the
//! harness takes a valid artifact, applies ≥ 1000 seeded mutations
//! (bit-flips, byte stomps, truncations, splices, varint/length-field
//! rewrites via [`dsz_datagen::corrupt::Corruptor`]), and decodes each
//! mutant. The invariants:
//!
//! * **No panics, ever.** Decoders return `Err` on malformed input; a
//!   panic anywhere in the campaign fails the test.
//! * **No silent success on v3/v4.** The checksummed DSZM containers must
//!   reject *every* mutant whose bytes differ from the original — a
//!   corrupted artifact never decodes to plausible-but-wrong weights.
//!   (v1/v2 and the SZ streams carry no integrity data, so a mutant that
//!   happens to parse may legally decode there; they only promise not to
//!   panic or over-allocate.)
//!
//! The *lazy* per-layer verification path (`SeekableContainer`) runs its
//! own agreement campaign in `tests/seekable.rs`.
//!
//! Every mutation is a pure function of its seed, so a failure replays
//! exactly from the seed in the panic message.

use dsz_core::optimizer::{ChosenLayer, Plan};
use dsz_core::{
    decode_model, encode_with_plan_config, encode_with_plan_v1, encode_with_plan_v2,
    verify_container, CompressedFcModel, CompressedModel, DataCodecKind, DecodePolicy, DeepSzError,
    LayerAssessment,
};
use dsz_datagen::corrupt::Corruptor;
use dsz_nn::FcLayerRef;
use dsz_sparse::PairArray;
use dsz_sz::{ErrorBound, SzConfig, SzFormat};

/// Seeded mutations per format generation (the acceptance floor is 1000).
const CAMPAIGN: u64 = 1200;

/// Two-layer deterministic fixture; shapes chain (32 → 24 → 16) so the
/// layers also work as a real network for the streaming-policy tests.
fn fixture() -> (Vec<LayerAssessment>, Plan) {
    let shapes = [(24usize, 32usize), (16, 24)];
    let ebs = [1e-2f64, 1e-3];
    let mut assessments = Vec::new();
    let mut chosen = Vec::new();
    for (li, &(rows, cols)) in shapes.iter().enumerate() {
        let mut dense = dsz_datagen::weights::trained_fc_weights(rows, cols, 0xFA1 + li as u64);
        dsz_prune::prune_to_density(&mut dense, 0.35);
        let pair = PairArray::from_dense(&dense, rows, cols);
        let (index_codec, index_blob) = dsz_lossless::best_fit(&pair.index);
        let fc = FcLayerRef {
            layer_index: li,
            name: format!("fc{li}"),
            rows,
            cols,
        };
        chosen.push(ChosenLayer {
            fc: fc.clone(),
            eb: ebs[li],
            degradation: 0.0,
            data_bytes: 0,
            index_bytes: index_blob.len(),
            codec: DataCodecKind::Sz,
            point_index: 0,
        });
        assessments.push(LayerAssessment {
            fc,
            pair,
            index_codec,
            index_bytes: index_blob.len(),
            points: Vec::new(),
        });
    }
    (
        assessments,
        Plan {
            layers: chosen,
            predicted_loss: 0.0,
            total_bytes: 0,
        },
    )
}

fn pinned_sz() -> SzConfig {
    SzConfig {
        chunk_elems: 4096,
        ..SzConfig::default()
    }
}

/// Runs the seeded campaign over one artifact. `decode` returns whether
/// the mutant decoded successfully; when `checksummed`, any changed-bytes
/// mutant that decodes is a silent-success failure.
fn campaign(generation: &str, base: &[u8], checksummed: bool, decode: impl Fn(&[u8]) -> bool) {
    let mut skipped = 0u64;
    for seed in 0..CAMPAIGN {
        let mut c = Corruptor::new(seed);
        let mut mutant = base.to_vec();
        let mutation = c.mutate(&mut mutant);
        if mutant == base {
            // e.g. a splice whose source equals its destination.
            skipped += 1;
            continue;
        }
        let ok = decode(&mutant);
        if checksummed {
            assert!(
                !ok,
                "{generation}: seed {seed} ({mutation:?}) decoded a corrupted artifact"
            );
        }
    }
    assert!(
        skipped < CAMPAIGN / 10,
        "{generation}: {skipped} no-op mutations — campaign too weak"
    );
}

/// SZ stream generations v1–v4: every mutant errors or decodes, never
/// panics, and allocations stay behind the declared-len caps.
#[test]
fn sz_stream_generations_never_panic() {
    let data = dsz_datagen::weights::trained_fc_weights(48, 40, 0x5EED);
    for (format, name) in [
        (SzFormat::V1, "SZ v1"),
        (SzFormat::V2, "SZ v2"),
        (SzFormat::V3, "SZ v3"),
        (SzFormat::V4, "SZ v4"),
    ] {
        let cfg = SzConfig {
            format,
            ..pinned_sz()
        };
        let stream = cfg.compress(&data, ErrorBound::Abs(1e-3)).unwrap();
        campaign(name, &stream, false, |mutant| {
            dsz_sz::decompress(mutant).is_ok()
        });
    }
}

/// DSZM v1 and v2 containers (no integrity data): mutants must never
/// panic; decoding is allowed to succeed.
#[test]
fn dszm_v1_v2_containers_never_panic() {
    let (assessments, plan) = fixture();
    let (v1, _) = encode_with_plan_v1(&assessments, &plan, &pinned_sz()).unwrap();
    let (v2, _) = encode_with_plan_v2(&assessments, &plan, &pinned_sz()).unwrap();
    for (model, name) in [(v1, "DSZM v1"), (v2, "DSZM v2")] {
        campaign(name, &model.bytes, false, |mutant| {
            decode_model(&CompressedModel {
                bytes: mutant.to_vec(),
            })
            .is_ok()
        });
    }
}

/// DSZM v3 and v4: *every* changed-bytes mutant is rejected — the
/// whole-container checksum leaves no silent-success path — and
/// verification agrees with decode on each mutant.
#[test]
fn dszm_v3_and_v4_reject_every_corruption() {
    let (assessments, plan) = fixture();
    let (v3, _) = dsz_core::encode_with_plan_v3(&assessments, &plan, &pinned_sz()).unwrap();
    let (v4, _) = encode_with_plan_config(&assessments, &plan, &pinned_sz()).unwrap();
    assert_eq!(v4.bytes[4], 4, "default container must be v4");
    for (model, name) in [(v3, "DSZM v3"), (v4, "DSZM v4")] {
        assert_eq!(
            verify_container(&model).unwrap(),
            2,
            "intact {name} must verify"
        );
        campaign(name, &model.bytes, true, |mutant| {
            let model = CompressedModel {
                bytes: mutant.to_vec(),
            };
            let verified = verify_container(&model).is_ok();
            let decoded = decode_model(&model).is_ok();
            assert_eq!(
                verified, decoded,
                "verify_container and decode_model disagree on a mutant"
            );
            decoded
        });
    }
}

/// Satellite hardening: footer varints rewritten to adversarial values —
/// a 10-byte `u64::MAX` offset and an 11-byte varint that overflows u64
/// entirely — must come back as clean errors from both the sequential
/// parser and the seekable open, never a panic or a wrapping `as` cast.
#[test]
fn overflowing_footer_varints_are_rejected() {
    let (assessments, plan) = fixture();
    let (v4, _) = encode_with_plan_config(&assessments, &plan, &pinned_sz()).unwrap();
    let len = v4.bytes.len();
    let footer_start =
        u64::from_le_bytes(v4.bytes[len - 20..len - 12].try_into().unwrap()) as usize;

    // Generation 1: the first footer varint (record 0's offset) rewritten
    // to u64::MAX — an offset no span check can accept.
    let mut huge = v4.bytes.clone();
    dsz_datagen::corrupt::rewrite_varint(&mut huge, footer_start, u64::MAX);
    // Generation 2: an 11-byte varint (shift ≥ 64) spliced over the same
    // field — `read_varint` itself must reject it.
    let mut overlong = v4.bytes.clone();
    overlong.splice(
        footer_start..footer_start + 1,
        std::iter::repeat(0xffu8).take(10).chain([0x01]),
    );
    // Generation 3: seeded sweep rewriting each footer entry's varints.
    let mut seeded = Vec::new();
    for seed in 0..64u64 {
        let mut c = Corruptor::new(seed);
        let mut m = v4.bytes.clone();
        let off = footer_start + c.below(len - 20 - footer_start);
        dsz_datagen::corrupt::rewrite_varint(&mut m, off, c.next_u64() | (1 << 63));
        seeded.push(m);
    }

    for (i, mutant) in [huge, overlong].into_iter().chain(seeded).enumerate() {
        let model = CompressedModel {
            bytes: mutant.clone(),
        };
        assert!(
            decode_model(&model).is_err(),
            "mutant {i}: sequential decode accepted an overflowed footer varint"
        );
        // The seekable path trusts the footer *structurally* at open; it
        // must reject these at open or on every layer access.
        if let Ok(seek) = dsz_core::SeekableContainer::open_slice(&mutant) {
            for li in 0..seek.layer_count() {
                let authentic = dsz_core::SeekableContainer::open_slice(&v4.bytes)
                    .unwrap()
                    .layer(li)
                    .unwrap();
                if let Ok(l) = seek.layer(li) {
                    assert_eq!(
                        l.dense, authentic.dense,
                        "mutant {i}: seekable served different weights for layer {li}"
                    );
                }
            }
        }
    }
}

/// An intact default-version container round-trips bit-identically
/// regardless of the worker count (the tier-1 gate also runs this whole
/// suite under `DSZ_THREADS=1` and `=4`).
#[test]
fn dszm_intact_roundtrip_is_bit_identical_across_workers() {
    let (assessments, plan) = fixture();
    let (v3, _) = encode_with_plan_config(&assessments, &plan, &pinned_sz()).unwrap();
    let decode_bits = |workers: usize| {
        dsz_tensor::parallel::with_workers(workers, || {
            decode_model(&v3)
                .unwrap()
                .0
                .into_iter()
                .flat_map(|l| l.dense.into_iter().map(f32::to_bits))
                .collect::<Vec<u32>>()
        })
    };
    let want = decode_bits(1);
    assert_eq!(decode_bits(4), want, "decode differs at 4 workers");
    // And against the source weights: the decoded values obey each bound.
    let mut off = 0usize;
    for (a, c) in assessments.iter().zip(&plan.layers) {
        let orig = a.pair.to_dense().unwrap();
        let got: Vec<f32> = want[off..off + orig.len()]
            .iter()
            .map(|&b| f32::from_bits(b))
            .collect();
        assert!(dsz_sz::max_abs_error(&orig, &got) <= c.eb * (1.0 + 1e-9));
        off += orig.len();
    }
}

/// Stomps the version byte of every embedded SZ stream whose magic starts
/// at or after `from`, returning how many were hit. Framing (lengths,
/// offsets) is untouched, so the container still parses and the failure
/// surfaces in the per-layer decode stage.
fn break_sz_streams(bytes: &mut [u8], from: usize) -> usize {
    let mut hit = 0;
    for i in from..bytes.len().saturating_sub(5) {
        if &bytes[i..i + 4] == b"SZ1D" {
            bytes[i + 4] = 0x7f; // unsupported stream version
            hit += 1;
        }
    }
    hit
}

/// Streaming decode-failure policy: `FailFast` surfaces the first bad
/// layer; `ReportBadLayers` enumerates every bad layer in one pass. The
/// prefetch worker path must route errors back as `Err` too.
#[test]
fn decode_policy_routes_streaming_errors() {
    // Build a network whose fc layers match the fixture exactly.
    let (assessments, plan) = fixture();
    let mut net = dsz_nn::Network {
        input_shape: dsz_tensor::VolShape { c: 32, h: 1, w: 1 },
        layers: Vec::new(),
    };
    for a in &assessments {
        net.layers.push(dsz_nn::Layer::Dense(dsz_nn::DenseLayer {
            name: a.fc.name.clone(),
            w: dsz_tensor::Matrix {
                rows: a.fc.rows,
                cols: a.fc.cols,
                data: a.pair.to_dense().unwrap(),
            },
            b: vec![0.0; a.fc.rows],
        }));
    }
    // A v2 container (no container checksum, so parsing succeeds) with
    // every layer's SZ stream version byte stomped.
    let (mut v2, _) = encode_with_plan_v2(&assessments, &plan, &pinned_sz()).unwrap();
    assert_eq!(break_sz_streams(&mut v2.bytes, 0), 2);

    let probe = dsz_nn::Batch::from_features(4, 32, vec![0.1; 4 * 32]);

    for depth in [0usize, 1] {
        let fail_fast = CompressedFcModel::new(&net, &v2)
            .unwrap()
            .with_prefetch_depth(depth);
        let err = fail_fast.forward(&probe).unwrap_err();
        assert!(
            matches!(err, DeepSzError::Corrupt { .. }),
            "depth {depth}: FailFast should surface the first Corrupt error, got: {err}"
        );

        let report_all = CompressedFcModel::new(&net, &v2)
            .unwrap()
            .with_prefetch_depth(depth)
            .with_decode_policy(DecodePolicy::ReportBadLayers);
        let err = report_all.forward(&probe).unwrap_err();
        let DeepSzError::BadLayers(errs) = err else {
            panic!("depth {depth}: expected BadLayers, got: {err}");
        };
        assert_eq!(errs.len(), 2, "both damaged layers should be reported");
        assert!(errs
            .iter()
            .all(|e| matches!(e, DeepSzError::Corrupt { .. })));
    }

    // materialize() obeys the policy too.
    let err = CompressedFcModel::new(&net, &v2)
        .unwrap()
        .with_decode_policy(DecodePolicy::ReportBadLayers)
        .materialize()
        .unwrap_err();
    assert!(matches!(err, DeepSzError::BadLayers(e) if e.len() == 2));
}

/// The structured error names the failing layer and stage.
#[test]
fn corrupt_errors_name_layer_and_stage() {
    let (assessments, plan) = fixture();
    let (mut v2, _) = encode_with_plan_v2(&assessments, &plan, &pinned_sz()).unwrap();
    // Damage only the second layer's stream.
    let second = v2
        .bytes
        .windows(4)
        .enumerate()
        .filter(|(_, w)| w == b"SZ1D")
        .map(|(i, _)| i)
        .nth(1)
        .unwrap();
    assert_eq!(break_sz_streams(&mut v2.bytes, second), 1);
    let err = decode_model(&v2).unwrap_err();
    let DeepSzError::Corrupt { layer, stage, .. } = err else {
        panic!("expected Corrupt, got: {err}");
    };
    assert_eq!(layer, "fc1");
    assert_eq!(stage, "cross-check"); // bad version fails the header peek
}
