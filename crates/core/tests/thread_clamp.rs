//! Regression suite for the thread-scaling fix: worker counts are
//! clamped to the host's real parallelism, and — critically — the
//! *layout* worker count that picks the adaptive SZ chunk geometry is
//! the clamped one, so `DSZ_THREADS=4` on a 1-core host emits containers
//! byte-identical to `DSZ_THREADS=1` instead of baking quarter-sized
//! chunks (extra framing bytes) into the stream. `scripts/tier1.sh` runs
//! this suite under both `DSZ_THREADS=1` and `DSZ_THREADS=4`.

use dsz_core::optimizer::{ChosenLayer, Plan};
use dsz_core::{encode_with_plan_config, DataCodecKind, LayerAssessment};
use dsz_nn::FcLayerRef;
use dsz_sparse::PairArray;
use dsz_sz::{adaptive_chunk_elems, SzConfig};
use dsz_tensor::parallel::{clamp_to_host, host_parallelism, layout_workers, with_workers};

/// One fc layer big enough that the adaptive chunk size actually depends
/// on the worker count (`n / (4·workers)` above the 16Ki floor), so the
/// byte-equality assertions below would catch an unclamped layout.
fn fixture() -> (Vec<LayerAssessment>, Plan, usize) {
    let (rows, cols) = (512usize, 800usize);
    let mut dense = dsz_datagen::weights::trained_fc_weights(rows, cols, 0xC1A);
    dsz_prune::prune_to_density(&mut dense, 0.35);
    let pair = PairArray::from_dense(&dense, rows, cols);
    let n = pair.data.len();
    let (index_codec, index_blob) = dsz_lossless::best_fit(&pair.index);
    let fc = FcLayerRef {
        layer_index: 0,
        name: "fc0".to_string(),
        rows,
        cols,
    };
    let plan = Plan {
        layers: vec![ChosenLayer {
            fc: fc.clone(),
            eb: 1e-3,
            degradation: 0.0,
            data_bytes: 0,
            index_bytes: index_blob.len(),
            codec: DataCodecKind::Sz,
            point_index: 0,
        }],
        predicted_loss: 0.0,
        total_bytes: 0,
    };
    let assessments = vec![LayerAssessment {
        fc,
        pair,
        index_codec,
        index_bytes: index_blob.len(),
        points: Vec::new(),
    }];
    (assessments, plan, n)
}

fn encode_bytes(sz: &SzConfig) -> Vec<u8> {
    let (assessments, plan, _) = fixture();
    encode_with_plan_config(&assessments, &plan, sz)
        .unwrap()
        .0
        .bytes
}

/// The layout worker count is exactly the clamped request: `DSZ_THREADS`
/// if set (clamped to the host), else the host's own parallelism.
#[test]
fn layout_workers_are_the_clamped_request() {
    let requested = std::env::var("DSZ_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok());
    assert_eq!(
        layout_workers(),
        clamp_to_host(requested.unwrap_or_else(host_parallelism))
    );
    assert!(layout_workers() <= host_parallelism());
}

/// Container bytes from the default adaptive config equal the bytes from
/// an explicitly pinned chunk size computed with the *clamped* layout
/// worker count — and on a 1-core host (where tier-1 runs this under
/// both `DSZ_THREADS=1` and `DSZ_THREADS=4`) they equal the 1-worker
/// geometry, which is the regression this suite pins: before the clamp,
/// `DSZ_THREADS=4` shrank the adaptive chunks 4× and changed the bytes.
#[test]
fn default_container_bytes_use_clamped_layout_geometry() {
    let (_, _, n) = fixture();
    assert_ne!(
        adaptive_chunk_elems(n, 1),
        adaptive_chunk_elems(n, 4),
        "fixture too small: adaptive geometry must be worker-sensitive \
         for this test to mean anything"
    );

    let adaptive = encode_bytes(&SzConfig::default());
    let pinned = encode_bytes(&SzConfig {
        chunk_elems: adaptive_chunk_elems(n, layout_workers()),
        ..SzConfig::default()
    });
    assert_eq!(
        adaptive, pinned,
        "adaptive layout no longer matches the clamped worker count"
    );

    if host_parallelism() == 1 {
        let one_worker = encode_bytes(&SzConfig {
            chunk_elems: adaptive_chunk_elems(n, 1),
            ..SzConfig::default()
        });
        assert_eq!(
            adaptive, one_worker,
            "on a 1-core host every DSZ_THREADS value must emit the \
             1-worker container bytes"
        );
    }
}

/// Execution-worker overrides never leak into the bytes: sweeping
/// `with_workers` around a default (adaptive-geometry) encode produces
/// identical containers, because layout reads the process budget, not
/// the execution override.
#[test]
fn execution_worker_sweep_never_changes_container_bytes() {
    let reference = with_workers(1, || encode_bytes(&SzConfig::default()));
    for workers in [2usize, 4, 8] {
        assert_eq!(
            with_workers(workers, || encode_bytes(&SzConfig::default())),
            reference,
            "container bytes drifted at {workers} execution workers"
        );
    }
}
