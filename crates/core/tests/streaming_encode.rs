//! Byte-determinism and budget-enforcement suite for the streaming
//! encode path ([`dsz_core::encode_to_writer`]).
//!
//! The streaming engine must emit **exactly** the materializing
//! encoder's container bytes — for every worker count, chunk geometry,
//! buffer budget, codec mix, and writer kind — and its buffer-ring
//! ledger must never exceed the configured `encode_bytes_budget` by more
//! than the documented mandatory floor (one record's blobs plus one
//! chunk slot). `scripts/tier1.sh` runs this suite under both
//! `DSZ_THREADS` settings.

use dsz_core::optimizer::{ChosenLayer, Plan};
use dsz_core::{
    decode_model, encode_to_writer, encode_to_writer_config, encode_with_plan_config,
    CompressedModel, DataCodecKind, EncodeStreamConfig, LayerAssessment,
};
use dsz_nn::FcLayerRef;
use dsz_sparse::PairArray;
use dsz_sz::{chunk_slot_bytes, SzConfig, SzFormat};
use dsz_tensor::parallel::with_workers;

/// Same fixture the golden-bytes suite pins: two small pruned fc layers.
fn fixture() -> (Vec<LayerAssessment>, Plan) {
    build_fixture(&[(24, 32, 0.30), (16, 10, 0.40)], &[1e-2, 1e-3])
}

/// A fixture whose layers span many SZ chunks, so the bounded ring
/// actually cycles: three layers, the largest ~8k kept weights.
fn wide_fixture() -> (Vec<LayerAssessment>, Plan) {
    build_fixture(
        &[(64, 256, 0.50), (48, 128, 0.35), (16, 10, 0.40)],
        &[1e-2, 5e-3, 1e-3],
    )
}

fn build_fixture(shapes: &[(usize, usize, f64)], ebs: &[f64]) -> (Vec<LayerAssessment>, Plan) {
    let mut assessments = Vec::new();
    let mut chosen = Vec::new();
    for (li, &(rows, cols, density)) in shapes.iter().enumerate() {
        let mut dense = dsz_datagen::weights::trained_fc_weights(rows, cols, 0xD5A + li as u64);
        dsz_prune::prune_to_density(&mut dense, density);
        let pair = PairArray::from_dense(&dense, rows, cols);
        let (index_codec, index_blob) = dsz_lossless::best_fit(&pair.index);
        let fc = FcLayerRef {
            layer_index: li,
            name: format!("fc{li}"),
            rows,
            cols,
        };
        chosen.push(ChosenLayer {
            fc: fc.clone(),
            eb: ebs[li],
            degradation: 0.0,
            data_bytes: 0,
            index_bytes: index_blob.len(),
            codec: DataCodecKind::Sz,
            point_index: 0,
        });
        assessments.push(LayerAssessment {
            fc,
            pair,
            index_codec,
            index_bytes: index_blob.len(),
            points: Vec::new(),
        });
    }
    (
        assessments,
        Plan {
            layers: chosen,
            predicted_loss: 0.0,
            total_bytes: 0,
        },
    )
}

/// The pinned SZ configuration the golden container was captured with.
fn pinned_sz() -> SzConfig {
    SzConfig {
        chunk_elems: 4096,
        format: SzFormat::V3,
        ..SzConfig::default()
    }
}

fn stream_bytes(
    assessments: &[LayerAssessment],
    plan: &Plan,
    sz: &SzConfig,
    budget: Option<usize>,
) -> (Vec<u8>, dsz_core::EncodeReport) {
    let mut buf = Vec::new();
    let cfg = EncodeStreamConfig {
        encode_bytes_budget: budget,
    };
    let report = encode_to_writer_config(assessments, plan, sz, &cfg, &mut buf).unwrap();
    (buf, report)
}

/// Streaming output is bit-identical to the materializing encoder for
/// every worker count and buffer budget — from "one chunk live" to
/// unbounded — and the reports agree on every size field.
#[test]
fn streaming_matches_materializing_across_workers_and_budgets() {
    for (assessments, plan) in [fixture(), wide_fixture()] {
        for sz in [
            pinned_sz(),
            SzConfig::default(),
            SzConfig {
                chunk_elems: 512,
                ..SzConfig::default()
            },
        ] {
            let (reference, ref_report) =
                encode_with_plan_config(&assessments, &plan, &sz).unwrap();
            for workers in [1usize, 2, 4, 8] {
                for budget in [
                    Some(1),
                    Some(chunk_slot_bytes(sz.chunk_elems)),
                    Some(1 << 20),
                    None,
                ] {
                    let (bytes, report) =
                        with_workers(workers, || stream_bytes(&assessments, &plan, &sz, budget));
                    assert_eq!(
                        bytes, reference.bytes,
                        "streaming bytes diverged (workers={workers}, budget={budget:?}, \
                         chunk={})",
                        sz.chunk_elems
                    );
                    assert_eq!(report.total_bytes, ref_report.total_bytes);
                    assert_eq!(report.layers.len(), ref_report.layers.len());
                    for (s, r) in report.layers.iter().zip(&ref_report.layers) {
                        assert_eq!((s.data_bytes, s.index_bytes), (r.data_bytes, r.index_bytes));
                    }
                }
            }
        }
    }
}

/// The default streaming entry point reproduces `encode_with_plan`'s
/// exact golden-fixture container, and the streamed bytes decode to the
/// same pinned weights as the golden suite (`GOLDEN_FNV`).
#[test]
fn streamed_golden_fixture_decodes_to_pinned_weights() {
    let (assessments, plan) = fixture();
    let (reference, _) = encode_with_plan_config(&assessments, &plan, &pinned_sz()).unwrap();
    let (bytes, _) = stream_bytes(&assessments, &plan, &pinned_sz(), None);
    assert_eq!(bytes, reference.bytes, "streamed v4 container drifted");

    let (decoded, _) = decode_model(&CompressedModel { bytes }).unwrap();
    let mut h = 0xcbf29ce484222325u64;
    for l in &decoded {
        for v in &l.dense {
            h ^= u64::from(v.to_bits());
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    assert_eq!(h, 0xbc39f0af75160cbb, "streamed container decode drifted");
}

/// Mixed-codec plans (a ZFP layer between SZ layers) stream identically:
/// the batch-encoded ZFP blob rides the same operator chain.
#[test]
fn mixed_codec_plan_streams_identically() {
    let (assessments, mut plan) = wide_fixture();
    plan.layers[1].codec = DataCodecKind::Zfp;
    let (reference, _) = encode_with_plan_config(&assessments, &plan, &pinned_sz()).unwrap();
    for workers in [1usize, 4] {
        for budget in [Some(1), None] {
            let (bytes, _) = with_workers(workers, || {
                stream_bytes(&assessments, &plan, &pinned_sz(), budget)
            });
            assert_eq!(
                bytes, reference.bytes,
                "mixed-codec streaming diverged (workers={workers}, budget={budget:?})"
            );
        }
    }
}

/// Writing through a real file (BufWriter) produces the same container
/// as writing into a Vec, and `encode_to_writer`'s default configuration
/// matches `encode_with_plan`'s default configuration.
#[test]
fn file_writer_matches_vec_writer() {
    let (assessments, plan) = fixture();
    let (reference, _) =
        encode_with_plan_config(&assessments, &plan, &SzConfig::default()).unwrap();

    let path = std::env::temp_dir().join(format!("dsz_stream_test_{}.dszm", std::process::id()));
    let file = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
    let report = encode_to_writer(&assessments, &plan, file).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    assert_eq!(bytes, reference.bytes, "file-backed container diverged");
    assert_eq!(report.total_bytes, bytes.len());
    assert!(dsz_core::verify_container(&CompressedModel { bytes }).unwrap() == 2);
}

/// The encode buffer ledger never exceeds the configured budget by more
/// than the documented mandatory floor — one record's assembled blobs
/// plus one chunk slot — and a tight budget's peak sits strictly below
/// the unbounded (materializing) peak.
#[test]
fn encode_bytes_budget_high_water_mark_is_enforced() {
    let (assessments, plan) = wide_fixture();
    let sz = SzConfig {
        chunk_elems: 1024,
        ..SzConfig::default()
    };
    let (_, ref_report) = encode_with_plan_config(&assessments, &plan, &sz).unwrap();
    // Mandatory floor: the largest record's data+index blobs (they must
    // live while the record is assembled and written) plus one forced
    // head-of-line chunk slot.
    let floor = ref_report
        .layers
        .iter()
        .map(|l| l.data_bytes + l.index_bytes)
        .max()
        .unwrap()
        + chunk_slot_bytes(sz.chunk_elems);

    let (_, unbounded) = stream_bytes(&assessments, &plan, &sz, None);
    let mut tight_peak = None;
    for budget in [1usize, chunk_slot_bytes(sz.chunk_elems), 1 << 16] {
        for workers in [1usize, 4] {
            let (_, report) = with_workers(workers, || {
                stream_bytes(&assessments, &plan, &sz, Some(budget))
            });
            assert!(
                report.peak_buffered_bytes <= budget + floor,
                "budget {budget} exceeded: peak {} > budget + floor {}",
                report.peak_buffered_bytes,
                budget + floor
            );
            if budget == 1 && workers == 1 {
                tight_peak = Some(report.peak_buffered_bytes);
            }
        }
    }
    let tight_peak = tight_peak.unwrap();
    assert!(
        tight_peak < unbounded.peak_buffered_bytes,
        "tight-budget peak {tight_peak} not below materializing peak {}",
        unbounded.peak_buffered_bytes
    );
}
