//! Property test: every [`DataCodec`]'s `decode_into` must match its
//! allocating `decode` byte-for-byte, for both registry codecs, across
//! array sizes, error bounds, and dirty pre-used scratch buffers — the
//! contract the incremental assessment arena relies on.

use dsz_core::DataCodecKind;
use dsz_sz::ErrorBound;
use proptest::prelude::*;

fn weights(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((s >> 11) as f64 / (1u64 << 53) as f64) as f32 - 0.5) * 0.2
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn decode_into_matches_decode(
        n in prop_oneof![Just(0usize), 1usize..2000, Just(65_537usize)],
        seed in 0u64..1000,
        eb_exp in 2u32..5,
        junk in 0usize..64,
    ) {
        let data = weights(n, seed);
        let bound = ErrorBound::Abs(10f64.powi(-(eb_exp as i32)));
        // One shared scratch across codecs and cases: reuse with stale
        // contents/capacity is exactly the steady-state the arena sees.
        let mut out = vec![0.25f32; junk];
        for kind in DataCodecKind::ALL {
            let codec = kind.codec();
            let blob = codec.encode(&data, bound).unwrap();
            let want = codec.decode(&blob).unwrap();
            codec.decode_into(&blob, &mut out).unwrap();
            prop_assert_eq!(out.len(), want.len(), "{}", kind.name());
            prop_assert!(
                out.iter().zip(&want).all(|(a, b)| a.to_bits() == b.to_bits()),
                "{}: scratch decode diverged", kind.name()
            );
        }
    }
}
