//! Disk-backed decoded-layer spill through the streaming forward pass
//! (`CompressedFcModel::with_spill_dir`, `docs/ROBUSTNESS.md` "Spill-file
//! integrity").
//!
//! The spill cache trades memory for disk: decoded fc layers are parked
//! up to a byte quota, evicted layers land FNV-stamped on disk, and
//! repeat forwards rehydrate from the file instead of re-decoding the
//! container. This suite checks the trade is *exact* — outputs stay
//! bit-identical to the in-RAM path under every quota, live decoded
//! bytes respect the quota, and damaged spill files are rejected with
//! the `"spill"` corruption stage rather than silently served.

use dsz_core::optimizer::{ChosenLayer, Plan};
use dsz_core::{
    encode_with_plan_config, CompressedFcModel, CompressedModel, DataCodecKind, DeepSzError,
    LayerAssessment,
};
use dsz_nn::FcLayerRef;
use dsz_sparse::PairArray;
use dsz_sz::SzConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn test_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "dsz-spill-stream-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Two chained fc layers (24×32 then 16×24): dense payloads of 3072 and
/// 1536 bytes, small enough to sweep quotas around both sizes.
fn fixture() -> (dsz_nn::Network, CompressedModel) {
    let shapes = [(24usize, 32usize), (16, 24)];
    let ebs = [1e-2f64, 1e-3];
    let mut assessments = Vec::new();
    let mut chosen = Vec::new();
    let mut net = dsz_nn::Network {
        input_shape: dsz_tensor::VolShape { c: 32, h: 1, w: 1 },
        layers: Vec::new(),
    };
    for (li, &(rows, cols)) in shapes.iter().enumerate() {
        let mut dense = dsz_datagen::weights::trained_fc_weights(rows, cols, 0x59A + li as u64);
        dsz_prune::prune_to_density(&mut dense, 0.35);
        let pair = PairArray::from_dense(&dense, rows, cols);
        let (index_codec, index_blob) = dsz_lossless::best_fit(&pair.index);
        let fc = FcLayerRef {
            layer_index: li,
            name: format!("fc{li}"),
            rows,
            cols,
        };
        net.layers.push(dsz_nn::Layer::Dense(dsz_nn::DenseLayer {
            name: fc.name.clone(),
            w: dsz_tensor::Matrix {
                rows,
                cols,
                data: dense,
            },
            b: vec![0.0; rows],
        }));
        chosen.push(ChosenLayer {
            fc: fc.clone(),
            eb: ebs[li],
            degradation: 0.0,
            data_bytes: 0,
            index_bytes: index_blob.len(),
            codec: DataCodecKind::Sz,
            point_index: 0,
        });
        assessments.push(LayerAssessment {
            fc,
            pair,
            index_codec,
            index_bytes: index_blob.len(),
            points: Vec::new(),
        });
    }
    let plan = Plan {
        layers: chosen,
        predicted_loss: 0.0,
        total_bytes: 0,
    };
    let sz = SzConfig {
        chunk_elems: 4096,
        ..SzConfig::default()
    };
    let (model, _) = encode_with_plan_config(&assessments, &plan, &sz).unwrap();
    (net, model)
}

fn probe() -> dsz_nn::Batch {
    dsz_nn::Batch::from_features(
        4,
        32,
        (0..4 * 32).map(|i| (i as f32 * 0.37).sin()).collect(),
    )
}

const LAYER0_BYTES: usize = 24 * 32 * 4; // largest dense payload
const LAYER1_BYTES: usize = 16 * 24 * 4;

/// Acceptance property: a spill-quota'd forward pass is bit-identical to
/// the in-RAM streaming pass under every quota regime — everything
/// spills (0), only the big layer spills (2048), LRU eviction churn
/// (4000), and nothing spills (`usize::MAX`) — on first *and* repeat
/// forwards, while live decoded bytes stay under `quota + executing
/// layer`.
#[test]
fn spill_forward_is_bit_identical_to_in_ram_under_every_quota() {
    let (net, model) = fixture();
    let in_ram = CompressedFcModel::new(&net, &model).unwrap();
    let (want, _) = in_ram.forward(&probe()).unwrap();

    for quota in [0usize, 2048, 4000, usize::MAX] {
        let dir = test_dir("quota");
        let spilling = CompressedFcModel::new(&net, &model)
            .unwrap()
            .with_spill_dir(&dir, quota)
            .unwrap();
        for pass in 0..3 {
            let (got, stats) = spilling.forward(&probe()).unwrap();
            assert!(
                got == want,
                "quota {quota} pass {pass}: spill forward diverged from in-RAM"
            );
            assert!(
                stats.peak_dense_bytes <= quota.saturating_add(LAYER0_BYTES),
                "quota {quota} pass {pass}: peak {} exceeds quota + largest layer",
                stats.peak_dense_bytes
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Repeat forwards under a spilling quota rehydrate from disk instead of
/// re-decoding; under an unlimited quota they hit the live cache and
/// never touch disk at all.
#[test]
fn repeat_forwards_rehydrate_instead_of_redecoding() {
    let (net, model) = fixture();

    // Quota 0: both layers are oversized for memory, so every store goes
    // straight to disk and every repeat fetch is a file rehydrate.
    let dir = test_dir("rehydrate");
    let spilling = CompressedFcModel::new(&net, &model)
        .unwrap()
        .with_spill_dir(&dir, 0)
        .unwrap();
    spilling.forward(&probe()).unwrap();
    let first = spilling.spill_stats().unwrap();
    assert_eq!(first.misses, 2, "first pass must decode both layers");
    assert_eq!(first.spills, 2, "quota 0 must park both layers on disk");
    assert_eq!(first.rehydrates, 0);
    spilling.forward(&probe()).unwrap();
    let second = spilling.spill_stats().unwrap();
    assert_eq!(
        second.rehydrates, 2,
        "second pass must rehydrate both layers from disk, not re-decode"
    );
    assert_eq!(second.misses, 2, "no new container decodes on the repeat");
    std::fs::remove_dir_all(&dir).ok();

    // Unlimited quota: both payloads stay live; repeats are memory hits.
    let dir = test_dir("live");
    assert!(LAYER0_BYTES + LAYER1_BYTES < usize::MAX);
    let parked = CompressedFcModel::new(&net, &model)
        .unwrap()
        .with_spill_dir(&dir, usize::MAX)
        .unwrap();
    parked.forward(&probe()).unwrap();
    parked.forward(&probe()).unwrap();
    let stats = parked.spill_stats().unwrap();
    assert_eq!(stats.spills, 0, "unlimited quota must never spill");
    assert_eq!(stats.rehydrates, 0);
    assert_eq!(stats.live_hits, 2, "repeat pass must hit the live cache");
    std::fs::remove_dir_all(&dir).ok();
}

/// A spill file damaged between forwards is rejected with the `"spill"`
/// corruption stage — the cache never serves bytes that fail their
/// integrity stamp, even though the container itself is pristine.
#[test]
fn poisoned_spill_file_fails_forward_at_spill_stage() {
    let (net, model) = fixture();
    let dir = test_dir("poison");
    let spilling = CompressedFcModel::new(&net, &model)
        .unwrap()
        .with_spill_dir(&dir, 0)
        .unwrap();
    spilling.forward(&probe()).unwrap();

    let path = dir.join("layer-0.dspill");
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x04;
    std::fs::write(&path, &bytes).unwrap();

    let err = spilling.forward(&probe()).unwrap_err();
    match err {
        DeepSzError::Corrupt { stage, .. } => assert_eq!(stage, "spill"),
        other => panic!("expected spill-stage corruption, got: {other}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
