//! Lazy per-layer verification vs whole-container verification
//! (`docs/ROBUSTNESS.md`, "Lazy per-layer verification").
//!
//! [`SeekableContainer::layer`] verifies only the record it touches, so
//! its guarantee is necessarily narrower than `verify_container`'s
//! whole-container pass. This suite pins down the exact relationship on
//! the v4 format over the full seeded mutation campaign:
//!
//! * **Soundness (v4):** no mutant serves *different bytes* through the
//!   lazy path. For every mutant that whole-container verification
//!   rejects, each `layer(i)` call either errors or returns a layer
//!   bit-identical (name, index, dims, dense weights) to the authentic
//!   one — a lazy reader may legitimately not notice corruption outside
//!   the records it reads, but it must never *decode* corruption.
//! * **Per-layer completeness:** corruption *inside* record `i`'s span
//!   makes `layer(i)` fail, while every other layer still decodes
//!   bit-identically — the property that makes per-layer verification
//!   useful (one damaged layer does not take down the container).
//! * **Open-time structure:** truncations, bad trailers, and misaligned
//!   or overlapping footer spans are rejected at `open`.

use dsz_core::optimizer::{ChosenLayer, Plan};
use dsz_core::{
    encode_with_plan_config, encode_with_plan_v3, verify_container, CompressedModel, DataCodecKind,
    DecodedLayer, DeepSzError, LayerAssessment, SeekableContainer,
};
use dsz_datagen::corrupt::Corruptor;
use dsz_nn::FcLayerRef;
use dsz_sparse::PairArray;
use dsz_sz::SzConfig;

/// Seeded mutants for the agreement campaign (matches the fault-injection
/// acceptance floor).
const CAMPAIGN: u64 = 1200;

fn fixture() -> (Vec<LayerAssessment>, Plan) {
    let shapes = [(24usize, 32usize), (16, 24)];
    let ebs = [1e-2f64, 1e-3];
    let mut assessments = Vec::new();
    let mut chosen = Vec::new();
    for (li, &(rows, cols)) in shapes.iter().enumerate() {
        let mut dense = dsz_datagen::weights::trained_fc_weights(rows, cols, 0xFA1 + li as u64);
        dsz_prune::prune_to_density(&mut dense, 0.35);
        let pair = PairArray::from_dense(&dense, rows, cols);
        let (index_codec, index_blob) = dsz_lossless::best_fit(&pair.index);
        let fc = FcLayerRef {
            layer_index: li,
            name: format!("fc{li}"),
            rows,
            cols,
        };
        chosen.push(ChosenLayer {
            fc: fc.clone(),
            eb: ebs[li],
            degradation: 0.0,
            data_bytes: 0,
            index_bytes: index_blob.len(),
            codec: DataCodecKind::Sz,
            point_index: 0,
        });
        assessments.push(LayerAssessment {
            fc,
            pair,
            index_codec,
            index_bytes: index_blob.len(),
            points: Vec::new(),
        });
    }
    (
        assessments,
        Plan {
            layers: chosen,
            predicted_loss: 0.0,
            total_bytes: 0,
        },
    )
}

fn pinned_sz() -> SzConfig {
    SzConfig {
        chunk_elems: 4096,
        ..SzConfig::default()
    }
}

fn encode_v4() -> CompressedModel {
    let (assessments, plan) = fixture();
    encode_with_plan_config(&assessments, &plan, &pinned_sz())
        .unwrap()
        .0
}

fn layers_equal(a: &DecodedLayer, b: &DecodedLayer) -> bool {
    a.name == b.name
        && a.layer_index == b.layer_index
        && a.rows == b.rows
        && a.cols == b.cols
        && a.dense.len() == b.dense.len()
        && a.dense
            .iter()
            .zip(&b.dense)
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Reads `(offset, len)` record spans out of a v4 footer — test-side
/// reimplementation so span targeting does not depend on the code under
/// test beyond the wire format.
fn footer_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let len = bytes.len();
    assert_eq!(&bytes[len - 4..], b"DSZ4");
    let footer_start = u64::from_le_bytes(bytes[len - 20..len - 12].try_into().unwrap()) as usize;
    let footer = &bytes[footer_start..len - 20];
    let mut pos = 0usize;
    let mut spans = Vec::new();
    while pos < footer.len() {
        let off = dsz_lossless::bits::read_varint(footer, &mut pos).unwrap() as usize;
        let rec_len = dsz_lossless::bits::read_varint(footer, &mut pos).unwrap() as usize;
        pos += 24; // rec_fnv + data_fnv + idx_fnv
        spans.push((off, rec_len));
    }
    spans
}

/// The core agreement property over the full seeded campaign: whenever
/// whole-container verification rejects a mutant, no `layer(i)` access
/// may serve anything but the authentic layer — it errors or it returns
/// bit-identical content, never silently different weights or metadata.
#[test]
fn lazy_verify_agrees_with_whole_container_verify_on_all_mutants() {
    let v4 = encode_v4();
    let authentic: Vec<DecodedLayer> = {
        let seek = SeekableContainer::open_slice(&v4.bytes).unwrap();
        (0..seek.layer_count())
            .map(|i| seek.layer(i).unwrap())
            .collect()
    };

    let mut lazy_accepts_of_rejected_mutants = 0u64;
    for seed in 0..CAMPAIGN {
        let mut c = Corruptor::new(seed);
        let mut mutant = v4.bytes.clone();
        let mutation = c.mutate(&mut mutant);
        if mutant == v4.bytes {
            continue;
        }
        let whole_ok = verify_container(&CompressedModel {
            bytes: mutant.clone(),
        })
        .is_ok();
        assert!(
            !whole_ok,
            "seed {seed} ({mutation:?}): v4 whole-container verify accepted a changed mutant"
        );
        let Ok(seek) = SeekableContainer::open_slice(&mutant) else {
            continue; // rejected at open — trivially sound
        };
        for i in 0..seek.layer_count().min(authentic.len()) {
            match seek.layer(i) {
                Err(_) => {}
                Ok(l) => {
                    assert!(
                        layers_equal(&l, &authentic[i]),
                        "seed {seed} ({mutation:?}): layer {i} decoded lazily but differs \
                         from the authentic layer"
                    );
                    lazy_accepts_of_rejected_mutants += 1;
                }
            }
        }
    }
    // Sanity: the campaign must actually exercise the interesting case
    // (mutation outside a record's span, lazy access still succeeds).
    assert!(
        lazy_accepts_of_rejected_mutants > 0,
        "campaign never hit the lazy-accept case; property is vacuous"
    );
}

/// Vice-versa direction on targeted single-record corruptions: a flip
/// anywhere inside record i makes `layer(i)` fail, and every other layer
/// still decodes bit-identically.
#[test]
fn single_record_corruption_is_contained_to_that_layer() {
    let v4 = encode_v4();
    let spans = footer_spans(&v4.bytes);
    assert_eq!(spans.len(), 2);
    let seek_authentic = SeekableContainer::open_slice(&v4.bytes).unwrap();
    let authentic: Vec<DecodedLayer> = (0..spans.len())
        .map(|i| seek_authentic.layer(i).unwrap())
        .collect();

    for (target, &(off, len)) in spans.iter().enumerate() {
        // Sweep bit flips across the whole record span (every byte for
        // these small fixtures), not just the blobs — v4's per-record
        // digest must catch header-field damage (name, dims, eb, codec
        // ids) that v3's blob checksums never covered.
        for rel in 0..len {
            let mut mutant = v4.bytes.clone();
            mutant[off + rel] ^= 1 << (rel % 8);
            if mutant == v4.bytes {
                continue;
            }
            let seek = match SeekableContainer::open_slice(&mutant) {
                Ok(s) => s,
                Err(_) => continue, // structural damage caught even earlier
            };
            assert!(
                seek.layer(target).is_err(),
                "flip at record {target}+{rel} was not detected by layer({target})"
            );
            for other in 0..spans.len() {
                if other == target {
                    continue;
                }
                let l = seek.layer(other).unwrap_or_else(|e| {
                    panic!("flip inside record {target} broke layer({other}): {e}")
                });
                assert!(
                    layers_equal(&l, &authentic[other]),
                    "flip inside record {target} changed layer({other})"
                );
            }
        }
    }
}

/// The v3 lazy path still catches all blob corruption (its footer hashes
/// the blobs), even though header fields outside the blobs are only
/// guarded by parse-time cross-checks on that generation.
#[test]
fn v3_lazy_verify_catches_blob_corruption() {
    let (assessments, plan) = fixture();
    let (v3, _) = encode_with_plan_v3(&assessments, &plan, &pinned_sz()).unwrap();
    let seek = SeekableContainer::open_slice(&v3.bytes).unwrap();
    let authentic: Vec<DecodedLayer> = (0..seek.layer_count())
        .map(|i| seek.layer(i).unwrap())
        .collect();

    // Stomp bytes inside each SZ stream (the data blob) and check the
    // owning layer rejects while the other still matches.
    let stream_starts: Vec<usize> = v3
        .bytes
        .windows(4)
        .enumerate()
        .filter(|(_, w)| w == b"SZ1D")
        .map(|(i, _)| i)
        .collect();
    assert_eq!(stream_starts.len(), 2);
    for (target, &start) in stream_starts.iter().enumerate() {
        let mut mutant = v3.bytes.clone();
        mutant[start + 8] ^= 0x10;
        let seek = SeekableContainer::open_slice(&mutant).unwrap();
        assert!(
            seek.layer(target).is_err(),
            "v3 blob corruption in layer {target} not detected lazily"
        );
        let other = 1 - target;
        assert!(layers_equal(&seek.layer(other).unwrap(), &authentic[other]));
    }
}

/// Open validates structure: truncation anywhere in the trailer/footer,
/// a stomped trailer magic, and de-aligned or overlapping footer spans
/// are all rejected before any layer access.
#[test]
fn open_rejects_structural_damage() {
    let v4 = encode_v4();
    let len = v4.bytes.len();

    for cut in [len - 1, len - 10, len - 20, 70, 5, 0] {
        assert!(
            SeekableContainer::open_slice(&v4.bytes[..cut]).is_err(),
            "truncation to {cut} bytes accepted"
        );
    }

    let mut bad_magic = v4.bytes.clone();
    bad_magic[len - 1] = b'X';
    assert!(SeekableContainer::open_slice(&bad_magic).is_err());

    // Rewrite record 1's footer offset to a de-aligned value: open must
    // reject it even though nothing else changed.
    let spans = footer_spans(&v4.bytes);
    let footer_start =
        u64::from_le_bytes(v4.bytes[len - 20..len - 12].try_into().unwrap()) as usize;
    // Walk to the second entry's offset varint.
    let mut pos = footer_start;
    {
        let mut p = pos - footer_start;
        let footer = &v4.bytes[footer_start..len - 20];
        dsz_lossless::bits::read_varint(footer, &mut p).unwrap();
        dsz_lossless::bits::read_varint(footer, &mut p).unwrap();
        p += 24;
        pos = footer_start + p;
    }
    let mut misaligned = v4.bytes.clone();
    dsz_datagen::corrupt::rewrite_varint(&mut misaligned, pos, spans[1].0 as u64 + 1);
    assert!(
        SeekableContainer::open_slice(&misaligned).is_err(),
        "de-aligned v4 footer span accepted at open"
    );
}

/// Plain functionality: random access decodes out of order and matches
/// the sequential decoder on both checksummed generations, v1/v2 are
/// refused, and the file-backed source agrees with the slice source.
#[test]
fn seekable_roundtrip_matches_sequential_decode() {
    let (assessments, plan) = fixture();
    let v4 = encode_v4();
    let (v3, _) = encode_with_plan_v3(&assessments, &plan, &pinned_sz()).unwrap();
    let (seq, _) = dsz_core::decode_model(&v4).unwrap();

    for (bytes, version) in [(&v4.bytes, 4u8), (&v3.bytes, 3)] {
        let seek = SeekableContainer::open_slice(bytes).unwrap();
        assert_eq!(seek.version(), version);
        assert_eq!(seek.layer_count(), seq.len());
        for i in (0..seq.len()).rev() {
            assert!(
                layers_equal(&seek.layer(i).unwrap(), &seq[i]),
                "v{version} layer {i} differs from sequential decode"
            );
        }
    }

    let (v2, _) = dsz_core::encode_with_plan_v2(&assessments, &plan, &pinned_sz()).unwrap();
    let err = SeekableContainer::open_slice(&v2.bytes).unwrap_err();
    assert!(matches!(err, DeepSzError::BadContainer(_)));

    let path = std::env::temp_dir().join(format!("dszm-seekable-{}.dszm", std::process::id()));
    std::fs::write(&path, &v4.bytes).unwrap();
    let from_file = SeekableContainer::open_file(&path).unwrap();
    for (i, want) in seq.iter().enumerate() {
        assert!(layers_equal(&from_file.layer(i).unwrap(), want));
    }
    std::fs::remove_file(&path).ok();
}
