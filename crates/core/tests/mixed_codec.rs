//! Mixed-codec model coverage: containers where different layers chose
//! different [`dsz_core::DataCodec`]s must roundtrip bit-exactly through
//! both the eager `decode_model` path and `CompressedFcModel` streaming
//! inference, with container bytes deterministic across worker counts
//! (and across `DSZ_THREADS=1/4` — the tier-1 gate runs this suite under
//! both, and the FNV pin below would catch any divergence).

use dsz_core::optimizer::{ChosenLayer, Plan};
use dsz_core::streaming::streaming_matches_eager;
use dsz_core::{
    apply_decoded, decode_model, encode_with_plan_config, CompressedFcModel, DataCodecKind,
    LayerAssessment,
};
use dsz_nn::{zoo, Arch, FcLayerRef, Scale};
use dsz_sparse::PairArray;
use dsz_sz::{max_abs_error, SzConfig};
use dsz_tensor::parallel::with_workers;
use proptest::prelude::*;

/// Builds an assessment + plan over `layers` of `(rows, cols, eb, codec)`
/// with deterministic pruned trained-like weights.
fn fixture(layers: &[(usize, usize, f64, DataCodecKind)]) -> (Vec<LayerAssessment>, Plan) {
    let mut assessments = Vec::new();
    let mut chosen = Vec::new();
    for (li, &(rows, cols, eb, codec)) in layers.iter().enumerate() {
        let mut dense = dsz_datagen::weights::trained_fc_weights(rows, cols, 0xAB ^ (li as u64));
        dsz_prune::prune_to_density(&mut dense, 0.35);
        let pair = PairArray::from_dense(&dense, rows, cols);
        let (index_codec, index_blob) = dsz_lossless::best_fit(&pair.index);
        let fc = FcLayerRef {
            layer_index: li,
            name: format!("fc{li}"),
            rows,
            cols,
        };
        chosen.push(ChosenLayer {
            fc: fc.clone(),
            eb,
            degradation: 0.0,
            data_bytes: 0,
            index_bytes: index_blob.len(),
            codec,
            point_index: 0,
        });
        assessments.push(LayerAssessment {
            fc,
            pair,
            index_codec,
            index_bytes: index_blob.len(),
            points: Vec::new(),
        });
    }
    (
        assessments,
        Plan {
            layers: chosen,
            predicted_loss: 0.0,
            total_bytes: 0,
        },
    )
}

/// Worker-count-independent SZ geometry so container bytes are a pure
/// function of the input (host core count and `DSZ_THREADS` excluded).
fn pinned_sz() -> SzConfig {
    SzConfig {
        chunk_elems: 4096,
        ..SzConfig::default()
    }
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A model with one SZ layer and one ZFP layer roundtrips bit-exactly:
/// `decode_model` reproduces, per layer, exactly what that layer's own
/// codec decodes from its own stream.
#[test]
fn mixed_codec_model_roundtrips_bit_exactly() {
    let (assessments, plan) = fixture(&[
        (48, 64, 1e-3, DataCodecKind::Sz),
        (32, 40, 1e-3, DataCodecKind::Zfp),
    ]);
    let (model, report) = encode_with_plan_config(&assessments, &plan, &pinned_sz()).unwrap();
    assert_eq!(report.layers[0].data_codec, DataCodecKind::Sz);
    assert_eq!(report.layers[1].data_codec, DataCodecKind::Zfp);

    let (decoded, _) = decode_model(&model).unwrap();
    assert_eq!(decoded.len(), 2);
    for ((d, a), c) in decoded.iter().zip(&assessments).zip(&plan.layers) {
        // Reference: encode + decode this layer alone through its codec.
        let blob = c
            .codec
            .instance(&pinned_sz())
            .encode(&a.pair.data, dsz_sz::ErrorBound::Abs(c.eb))
            .unwrap();
        let data = c.codec.codec().decode(&blob).unwrap();
        let want = a.pair.with_data(data).unwrap().to_dense().unwrap();
        assert_eq!(
            d.dense.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "layer {} not bit-exact",
            d.name
        );
        // And the bound holds against the original weights.
        let orig = &assessments[d.layer_index].pair;
        let orig_dense = orig.to_dense().unwrap();
        assert!(max_abs_error(&orig_dense, &d.dense) <= c.eb * (1.0 + 1e-9));
    }
}

/// Same mixed container through streaming inference: the forward pass
/// that decodes layers on demand (with prefetch) must agree exactly with
/// eager decode + apply, on a real network skeleton.
#[test]
fn mixed_codec_streaming_matches_eager() {
    let mut net = zoo::build(Arch::LeNet300, Scale::Full, 5);
    let _ = dsz_prune::prune_network(&mut net, Arch::LeNet300.pruning_densities());

    // Plan straight over the network's own pruned weights, alternating
    // codecs across the three fc layers.
    let kinds = [DataCodecKind::Sz, DataCodecKind::Zfp, DataCodecKind::Sz];
    let mut assessments = Vec::new();
    let mut chosen = Vec::new();
    for (i, fc) in net.fc_layers().into_iter().enumerate() {
        let dense = &net.dense(fc.layer_index).w;
        let pair = PairArray::from_dense(&dense.data, dense.rows, dense.cols);
        let (index_codec, index_blob) = dsz_lossless::best_fit(&pair.index);
        chosen.push(ChosenLayer {
            fc: fc.clone(),
            eb: 1e-3,
            degradation: 0.0,
            data_bytes: 0,
            index_bytes: index_blob.len(),
            codec: kinds[i % kinds.len()],
            point_index: 0,
        });
        assessments.push(LayerAssessment {
            fc,
            pair,
            index_codec,
            index_bytes: index_blob.len(),
            points: Vec::new(),
        });
    }
    let plan = Plan {
        layers: chosen,
        predicted_loss: 0.0,
        total_bytes: 0,
    };
    let (model, report) = encode_with_plan_config(&assessments, &plan, &pinned_sz()).unwrap();
    assert_eq!(report.layers[1].data_codec, DataCodecKind::Zfp);

    let probe = dsz_datagen::digits::dataset(64, 9).batch(0, 32);
    assert!(streaming_matches_eager(&net, &model, &probe).unwrap());

    // Depth-2 prefetch and the serial path agree with eager too.
    let mut eager = net.clone();
    let (decoded, _) = decode_model(&model).unwrap();
    apply_decoded(&mut eager, decoded).unwrap();
    let want = eager.forward(&probe);
    for depth in [0usize, 2] {
        let streaming = CompressedFcModel::new(&net, &model)
            .unwrap()
            .with_prefetch_depth(depth);
        let (got, _) = streaming.forward(&probe).unwrap();
        assert!(got == want, "depth-{depth} streaming diverged from eager");
    }
}

/// Container bytes are deterministic across execution worker counts and
/// across processes: with the chunk geometry pinned, the FNV of the
/// mixed-codec container is a constant — running the suite under
/// `DSZ_THREADS=1` and `DSZ_THREADS=4` (as `scripts/tier1.sh` does)
/// checks the bytes are identical in both environments.
#[test]
fn mixed_codec_container_bytes_deterministic() {
    let layers = [
        (40, 50, 1e-2, DataCodecKind::Sz),
        (30, 30, 1e-3, DataCodecKind::Zfp),
        (20, 25, 1e-3, DataCodecKind::Sz),
    ];
    let encode = || {
        let (assessments, plan) = fixture(&layers);
        encode_with_plan_config(&assessments, &plan, &pinned_sz())
            .unwrap()
            .0
            .bytes
    };
    let reference = with_workers(1, encode);
    for workers in [2usize, 4, 8] {
        assert_eq!(
            with_workers(workers, encode),
            reference,
            "container bytes differ at {workers} workers"
        );
    }
    assert_eq!(
        fnv(&reference),
        0x83f0_a26f_cce2_68bf, // DSZM v4 (aligned records + per-record digests) generation
        "mixed-codec container bytes drifted (update the pin only on an \
         intentional format change)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random shapes × alternating codec assignments × worker counts:
    /// every layer of a mixed container reconstructs within its bound,
    /// under both codec orders.
    #[test]
    fn mixed_codec_roundtrips_within_bound(
        rows in 4usize..40,
        cols in 4usize..40,
        eb_idx in 0usize..3,
        zfp_first in any::<bool>(),
        workers in 1usize..5,
    ) {
        let eb = [1e-2f64, 1e-3, 1e-4][eb_idx];
        let (a, b) = if zfp_first {
            (DataCodecKind::Zfp, DataCodecKind::Sz)
        } else {
            (DataCodecKind::Sz, DataCodecKind::Zfp)
        };
        let (assessments, plan) = fixture(&[(rows, cols, eb, a), (cols, rows, eb, b)]);
        let decoded = with_workers(workers, || {
            let (model, _) =
                encode_with_plan_config(&assessments, &plan, &pinned_sz()).unwrap();
            decode_model(&model).unwrap().0
        });
        for (d, c) in decoded.iter().zip(&plan.layers) {
            let orig = assessments[d.layer_index].pair.to_dense().unwrap();
            prop_assert!(
                max_abs_error(&orig, &d.dense) <= c.eb * (1.0 + 1e-9),
                "layer {} violated eb {}", d.name, c.eb
            );
        }
    }
}
