//! Equivalence suite: incremental vs. full-evaluation assessment.
//!
//! The incremental engine (prefix-activation cache + suffix pass +
//! scratch arenas) must be *bit-identical* to the full-clone reference
//! path — same baseline accuracy, same `EbPoint` sequence (eb, Δ, bytes,
//! winning codec) for every layer — on a multi-layer zoo network, across
//! execution worker counts. `scripts/tier1.sh` runs this whole suite
//! under `DSZ_THREADS=1` and `=4`, sweeping the process budget too.

use dsz_core::{
    assess_network, assess_network_full, AccuracyEvaluator, AssessmentConfig, DatasetEvaluator,
    LayerAssessment,
};
use dsz_datagen::digits;
use dsz_nn::{train, zoo, Arch, Network, Scale, TrainConfig};
use dsz_prune::{prune_network, retrain};
use dsz_tensor::parallel::with_workers;

/// A pruned + briefly retrained LeNet-300-100: enough signal that
/// Algorithm 1's distortion criterion actually fires and the check walk
/// runs deep, so the equivalence covers both walks.
fn trained_workload() -> (Network, DatasetEvaluator) {
    let train_data = digits::dataset(700, 41);
    let test_data = digits::dataset(260, 42);
    let mut net = zoo::build(Arch::LeNet300, Scale::Full, 4242);
    train(
        &mut net,
        &train_data,
        &TrainConfig {
            epochs: 2,
            ..Default::default()
        },
        None,
    );
    let (masks, _) = prune_network(&mut net, Arch::LeNet300.pruning_densities());
    retrain(
        &mut net,
        &train_data,
        &TrainConfig {
            epochs: 1,
            lr: 0.02,
            ..Default::default()
        },
        &masks,
    );
    (net, DatasetEvaluator::new(test_data))
}

fn assert_identical(a: &[LayerAssessment], b: &[LayerAssessment], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: layer count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.fc, y.fc, "{what}: layer ref");
        assert_eq!(x.index_codec, y.index_codec, "{what}: index codec");
        assert_eq!(x.index_bytes, y.index_bytes, "{what}: index bytes");
        assert_eq!(x.pair, y.pair, "{what}: pair array");
        assert_eq!(
            x.points.len(),
            y.points.len(),
            "{what}: point count for {} ({:?} vs {:?})",
            x.fc.name,
            x.points.iter().map(|p| p.eb).collect::<Vec<_>>(),
            y.points.iter().map(|p| p.eb).collect::<Vec<_>>()
        );
        for (p, q) in x.points.iter().zip(&y.points) {
            assert_eq!(
                p.eb.to_bits(),
                q.eb.to_bits(),
                "{what}: eb for {}",
                x.fc.name
            );
            assert_eq!(
                p.degradation.to_bits(),
                q.degradation.to_bits(),
                "{what}: Δ at eb {} for {}",
                p.eb,
                x.fc.name
            );
            assert_eq!(p.data_bytes, q.data_bytes, "{what}: σ at eb {}", p.eb);
            assert_eq!(p.codec, q.codec, "{what}: codec at eb {}", p.eb);
        }
    }
}

#[test]
fn incremental_assessment_is_bit_identical_to_full() {
    let (net, eval) = trained_workload();
    let cfg = AssessmentConfig {
        expected_loss: 0.01,
        ..Default::default()
    };
    let (full, base_full) = assess_network_full(&net, &cfg, &eval).unwrap();
    // Sanity: the workload must exercise the check walk, not only the
    // decade scan, or this suite proves less than it claims.
    assert!(
        full.iter().any(|a| a.points.len() > 4),
        "workload too flat: {:?}",
        full.iter().map(|a| a.points.len()).collect::<Vec<_>>()
    );
    // The default path picks the incremental engine for DatasetEvaluator;
    // sweep execution worker counts for both engines — the speculative
    // batching must never change the output.
    for workers in [1usize, 4] {
        let (incr, base_incr) =
            with_workers(workers, || assess_network(&net, &cfg, &eval).unwrap());
        assert_eq!(
            base_incr.to_bits(),
            base_full.to_bits(),
            "baseline (workers={workers})"
        );
        assert_identical(&full, &incr, &format!("workers={workers}"));
    }
    let (full4, base_full4) = with_workers(4, || assess_network_full(&net, &cfg, &eval).unwrap());
    assert_eq!(base_full4.to_bits(), base_full.to_bits());
    assert_identical(&full, &full4, "full path workers=4");
}

#[test]
fn conv_prefix_network_assesses_identically() {
    // Untrained LeNet-5: the walk is short (accuracy is flat), but the
    // prefix cache must replay the conv feature extractor bit-exactly.
    let net = zoo::build(Arch::LeNet5, Scale::Full, 77);
    let eval = DatasetEvaluator::new(digits::dataset(90, 43));
    let cfg = AssessmentConfig::default();
    let (full, base_full) = assess_network_full(&net, &cfg, &eval).unwrap();
    let (incr, base_incr) = assess_network(&net, &cfg, &eval).unwrap();
    assert_eq!(base_incr.to_bits(), base_full.to_bits());
    assert_identical(&full, &incr, "lenet5");
}

#[test]
fn opaque_evaluator_falls_back_to_the_full_path() {
    // An evaluator that hides its dataset must still assess correctly
    // (through the reference engine) and agree with the transparent one.
    struct Opaque(DatasetEvaluator);
    impl AccuracyEvaluator for Opaque {
        fn evaluate(&self, net: &Network) -> f64 {
            self.0.evaluate(net)
        }
        fn evaluate_topk(&self, net: &Network) -> (f64, f64) {
            self.0.evaluate_topk(net)
        }
    }
    let net = zoo::build(Arch::LeNet300, Scale::Full, 99);
    let data = digits::dataset(60, 44);
    let transparent = DatasetEvaluator::new(data.clone());
    let opaque = Opaque(DatasetEvaluator::new(data));
    let cfg = AssessmentConfig::default();
    let (a, base_a) = assess_network(&net, &cfg, &transparent).unwrap();
    let (b, base_b) = assess_network(&net, &cfg, &opaque).unwrap();
    assert_eq!(base_a.to_bits(), base_b.to_bits());
    assert_identical(&a, &b, "opaque vs transparent");
}
