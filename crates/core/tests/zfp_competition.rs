//! Why `zfp_win_layers` is 0 — the audit of the ZFP tolerance mapping
//! (and the documentation, with teeth, of why SZ legitimately wins the
//! per-layer size competition on fc weights).
//!
//! The suspicion was an off-by-scale bug in [`dsz_zfp`]'s
//! fixed-accuracy cut: if `min_plane` sat several planes too low, every
//! block would spend bits overachieving the tolerance by orders of
//! magnitude and ZFP could never win a size competition. The audit
//! (derivation on `GUARD_PLANES` in `crates/zfp/src/lib.rs`) shows the
//! cut is worst-case-tight: truncation error `< 2^pmin` units per
//! coefficient, inverse-lift amplification ≤ ~6.75×, rounding ≤ 1/2
//! unit, so the chosen `pmin` bounds the error by `tol · 2^-1.2` —
//! safe with under one plane to spare. The observed ~8–16× slack is the
//! gap between worst-case and typical inputs, not a scale error (a true
//! off-by-scale bug would shift it by ≥ 256×).
//!
//! With the mapping exonerated, SZ's win is legitimate and expected:
//! * SZ's linear-predict-and-quantize spends the *entire* error bound
//!   (reconstruction errors sit just under `eb`), while a sound
//!   fixed-accuracy ZFP must reserve worst-case margin per block;
//! * pruned fc weights have no spatial smoothness for ZFP's
//!   decorrelating transform to exploit, while SZ's Huffman+zstd stage
//!   squeezes the heavily peaked quantization-code distribution;
//! * the paper itself measured SZ producing better compression than ZFP
//!   on the fully-connected layers it targets (Fig. 2) — `zfp_win_layers:
//!   0` in `BENCH_encode_decode.json` reproduces that finding.

use dsz_sz::{max_abs_error, ErrorBound, SzConfig};

fn smooth_sine(n: usize) -> Vec<f32> {
    (0..n).map(|i| (i as f32 * 0.01).sin()).collect()
}

fn multi_scale(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let t = i as f32 * 0.004;
            (t.sin() + 0.3 * (7.0 * t).sin() + 0.05 * (31.0 * t).sin()) * 0.5
        })
        .collect()
}

fn fc_weights(n: usize) -> Vec<f32> {
    let mut dense = dsz_datagen::weights::trained_fc_weights(n / 64, 64, 0x2F9);
    dsz_prune::prune_to_density(&mut dense, 0.35);
    dense
}

fn sz_bytes(data: &[f32], tol: f64) -> usize {
    SzConfig {
        chunk_elems: 4096,
        ..SzConfig::default()
    }
    .compress(data, ErrorBound::Abs(tol))
    .unwrap()
    .len()
}

/// Both sides of the tolerance mapping: every reconstruction honors the
/// bound (the safety direction), and none overachieves it by more than
/// a few guard planes (the no-off-by-scale direction). An off-by-scale
/// bug in `min_plane` — the hypothesis behind `zfp_win_layers: 0` —
/// would push the slack past 256× and fail the lower clamp.
#[test]
fn zfp_tolerance_mapping_is_tight_in_both_directions() {
    for (name, data) in [
        ("smooth-sine", smooth_sine(4096)),
        ("multi-scale", multi_scale(4096)),
        ("fc-weights", fc_weights(4096)),
    ] {
        for tol in [1e-2f64, 1e-3, 1e-4] {
            let blob = dsz_zfp::compress(&data, tol).unwrap();
            let dec = dsz_zfp::decompress(&blob).unwrap();
            let err = f64::from(max_abs_error(&data, &dec));
            assert!(
                err <= tol,
                "{name} tol {tol}: ZFP violated its bound (err {err:.3e})"
            );
            assert!(
                err * 256.0 > tol,
                "{name} tol {tol}: ZFP overachieves by {:.0}× — the \
                 tolerance cut is off by whole scales, not guard planes",
                tol / err
            );
        }
    }
}

/// The documented competition outcome: SZ emits the smaller stream on fc
/// weights at every assessed bound — and in this implementation even on
/// the smooth signals that favor ZFP's transform — so a plan whose
/// layers all chose SZ (`zfp_win_layers: 0`) is the correct result of
/// the size competition, matching the paper's Fig. 2 measurement for
/// fully-connected layers.
#[test]
fn sz_legitimately_wins_the_size_competition_on_fc_weights() {
    for tol in [1e-2f64, 1e-3, 1e-4] {
        let fc = fc_weights(4096);
        let zfp = dsz_zfp::compress(&fc, tol).unwrap().len();
        let sz = sz_bytes(&fc, tol);
        assert!(
            sz < zfp,
            "tol {tol}: SZ ({sz} B) no longer beats ZFP ({zfp} B) on fc \
             weights — revisit the per-layer competition documentation"
        );
    }
    // Context for the losing margin: ZFP trails even on its best-case
    // smooth input here, so losing on rough fc weights follows a
    // fortiori.
    let smooth = smooth_sine(4096);
    assert!(sz_bytes(&smooth, 1e-3) < dsz_zfp::compress(&smooth, 1e-3).unwrap().len());
}
