//! Cross-model shared decoded-layer cache through the streaming forward
//! pass (`CompressedFcModel::with_shared_cache`, `docs/SERVING.md`).
//!
//! The contract under test, end to end:
//!
//! * **Bit-identity at every quota** — a shared-cache forward returns
//!   exactly the uncached serial path's bits whether the quota is 0
//!   (nothing ever parks), smaller than one layer, exactly one layer, or
//!   effectively unbounded; and repeat forwards (hits) return the same
//!   bits again.
//! * **Ledger safety** — the cache's `ByteBudget` high-water mark never
//!   exceeds the global quota (the same assertion pattern
//!   `streaming_encode.rs` pins for the encode-side ledger, here without
//!   even a mandatory-floor allowance: insertion is `try_charge`-gated),
//!   including under seeded multi-thread cross-model stress.
//! * **Evict-then-refetch** — layers evicted under quota pressure and
//!   later refetched decode bit-identical to the first decode.

use dsz_core::optimizer::{ChosenLayer, Plan};
use dsz_core::{
    encode_with_plan_config, CompressedFcModel, CompressedModel, DataCodecKind, DeepSzError,
    LayerAssessment, SharedLayerCache,
};
use dsz_nn::{Batch, FcLayerRef};
use dsz_sparse::PairArray;
use dsz_sz::SzConfig;
use std::sync::Arc;

/// Two chained fc layers (24×32 then 16×24): dense payloads of 3072 and
/// 1536 bytes, small enough to sweep quotas around both sizes.
fn fixture(seed: u64) -> (dsz_nn::Network, CompressedModel) {
    let shapes = [(24usize, 32usize), (16, 24)];
    let ebs = [1e-2f64, 1e-3];
    let mut assessments = Vec::new();
    let mut chosen = Vec::new();
    let mut net = dsz_nn::Network {
        input_shape: dsz_tensor::VolShape { c: 32, h: 1, w: 1 },
        layers: Vec::new(),
    };
    for (li, &(rows, cols)) in shapes.iter().enumerate() {
        let mut dense = dsz_datagen::weights::trained_fc_weights(rows, cols, seed + li as u64);
        dsz_prune::prune_to_density(&mut dense, 0.35);
        let pair = PairArray::from_dense(&dense, rows, cols);
        let (index_codec, index_blob) = dsz_lossless::best_fit(&pair.index);
        let fc = FcLayerRef {
            layer_index: li,
            name: format!("fc{li}"),
            rows,
            cols,
        };
        net.layers.push(dsz_nn::Layer::Dense(dsz_nn::DenseLayer {
            name: fc.name.clone(),
            w: dsz_tensor::Matrix {
                rows,
                cols,
                data: dense,
            },
            b: vec![0.0; rows],
        }));
        chosen.push(ChosenLayer {
            fc: fc.clone(),
            eb: ebs[li],
            degradation: 0.0,
            data_bytes: 0,
            index_bytes: index_blob.len(),
            codec: DataCodecKind::Sz,
            point_index: 0,
        });
        assessments.push(LayerAssessment {
            fc,
            pair,
            index_codec,
            index_bytes: index_blob.len(),
            points: Vec::new(),
        });
    }
    let plan = Plan {
        layers: chosen,
        predicted_loss: 0.0,
        total_bytes: 0,
    };
    let sz = SzConfig {
        chunk_elems: 4096,
        ..SzConfig::default()
    };
    let (model, _) = encode_with_plan_config(&assessments, &plan, &sz).unwrap();
    (net, model)
}

fn probe(n: usize, seed: u64) -> Batch {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let data = (0..n * 32)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect();
    Batch::from_features(n, 32, data)
}

fn bits(b: &Batch) -> Vec<u32> {
    b.data.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn shared_cache_forward_bit_identical_at_every_quota() {
    let (net, model) = fixture(0x59A);
    let x = probe(3, 0xCAFE);
    let reference = CompressedFcModel::new(&net, &model)
        .unwrap()
        .with_prefetch(false)
        .forward(&x)
        .unwrap()
        .0;
    // 0 = never parks; 1000 < smaller layer; 1536/3072 = exactly one
    // layer; then room for one, both, and everything.
    for quota in [0usize, 1000, 1536, 3072, 4000, 4608, 1 << 20] {
        let cache = SharedLayerCache::new(quota);
        let streaming = CompressedFcModel::new(&net, &model)
            .unwrap()
            .with_shared_cache(cache.handle());
        for pass in 0..3 {
            let (out, stats) = streaming.forward(&x).unwrap();
            assert_eq!(
                bits(&out),
                bits(&reference),
                "quota {quota} pass {pass} diverged from the uncached serial path"
            );
            assert!(stats.peak_dense_bytes >= 3072, "executing layer counted");
        }
        let s = cache.stats();
        assert!(
            s.high_water <= quota,
            "quota {quota}: ledger high-water {} exceeded the quota",
            s.high_water
        );
        assert!(s.live_bytes <= quota);
        if quota == 0 {
            assert_eq!(s.hits, 0, "a zero quota can never hit");
        }
        if quota >= 4608 {
            // Both layers fit: passes 2 and 3 are pure hits.
            assert_eq!(s.hits, 4, "quota {quota}: expected 4 hits, got {}", s.hits);
            assert_eq!(s.misses, 2);
        }
    }
}

#[test]
fn evicted_then_refetched_layers_decode_bit_identical() {
    let (net, model) = fixture(0x59A);
    let x = probe(2, 0xBEEF);
    // Quota fits the larger layer alone: every forward parks fc0 (3072 B),
    // then must evict it to park fc1 (1536 B), so the next pass re-decodes
    // fc0 — a continuous evict/refetch churn.
    let cache = SharedLayerCache::new(3072);
    let streaming = CompressedFcModel::new(&net, &model)
        .unwrap()
        .with_shared_cache(cache.handle());
    let (first, _) = streaming.forward(&x).unwrap();
    for _ in 0..4 {
        let (again, _) = streaming.forward(&x).unwrap();
        assert_eq!(bits(&again), bits(&first), "refetched layer changed bits");
    }
    let s = cache.stats();
    assert!(s.evictions > 0, "quota pressure must have evicted");
    assert!(s.high_water <= 3072);
}

#[test]
fn cancelled_forward_stops_with_cancelled_error() {
    let (net, model) = fixture(0x59A);
    let x = probe(1, 1);
    let cache = SharedLayerCache::new(1 << 20);
    let streaming = CompressedFcModel::new(&net, &model)
        .unwrap()
        .with_shared_cache(cache.handle());
    match streaming.forward_cancellable(&x, &|| true) {
        Err(DeepSzError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // A probe that never fires must not change the result.
    let (out, _) = streaming.forward_cancellable(&x, &|| false).unwrap();
    let reference = CompressedFcModel::new(&net, &model)
        .unwrap()
        .with_prefetch(false)
        .forward(&x)
        .unwrap()
        .0;
    assert_eq!(bits(&out), bits(&reference));
}

/// Seeded multi-thread cross-model stress: 4 threads hammer two models
/// through one tightly-quota'd cache. The ledger must never exceed the
/// quota (checked live from a racing observer thread *and* via the
/// high-water mark afterwards), and every forward must stay bit-identical
/// to its model's uncached reference.
#[test]
fn concurrent_cross_model_stress_respects_quota_and_bits() {
    let (net_a, model_a) = fixture(0x59A);
    let (net_b, model_b) = fixture(0xB0B);
    // Quota just over one large layer: continuous cross-model eviction.
    let quota = 4000usize;
    let cache = SharedLayerCache::new(quota);
    let shared_a = Arc::new(
        CompressedFcModel::new(&net_a, &model_a)
            .unwrap()
            .with_shared_cache(cache.handle()),
    );
    let shared_b = Arc::new(
        CompressedFcModel::new(&net_b, &model_b)
            .unwrap()
            .with_shared_cache(cache.handle()),
    );
    let x = probe(2, 0x7E57);
    let ref_a = bits(
        &CompressedFcModel::new(&net_a, &model_a)
            .unwrap()
            .with_prefetch(false)
            .forward(&x)
            .unwrap()
            .0,
    );
    let ref_b = bits(
        &CompressedFcModel::new(&net_b, &model_b)
            .unwrap()
            .with_prefetch(false)
            .forward(&x)
            .unwrap()
            .0,
    );

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        // Racing observer: samples the live ledger while workers churn.
        let observer = {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut peak = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    peak = peak.max(cache.live_bytes());
                    std::thread::yield_now();
                }
                peak
            })
        };
        let workers: Vec<_> = (0..4u64)
            .map(|t| {
                let a = Arc::clone(&shared_a);
                let b = Arc::clone(&shared_b);
                let (x, ref_a, ref_b) = (x.clone(), ref_a.clone(), ref_b.clone());
                s.spawn(move || {
                    // Seeded per-thread model schedule.
                    let mut seed = 0xD1CE ^ (t << 16);
                    for i in 0..24 {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let (m, want) = if seed & 1 == 0 {
                            (&a, &ref_a)
                        } else {
                            (&b, &ref_b)
                        };
                        let (out, _) = m.forward(&x).unwrap();
                        assert_eq!(&bits(&out), want, "thread {t} iter {i} diverged");
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let observed_peak = observer.join().unwrap();
        assert!(
            observed_peak <= quota,
            "observer saw live bytes {observed_peak} over quota {quota}"
        );
    });
    let s = cache.stats();
    assert!(
        s.high_water <= quota,
        "ledger high-water {} exceeded global quota {quota}",
        s.high_water
    );
    assert!(s.live_bytes <= quota);
    assert!(s.hits + s.misses >= 4 * 24 * 2, "every layer was looked up");
    // Purging one model leaves the other's entries intact and the ledger
    // consistent.
    shared_a.shared_cache().unwrap().purge();
    assert!(cache.live_bytes() <= quota);
}
