//! ImageNet-class workload on the feature surrogate: compresses a reduced
//! AlexNet fc head trained on class-conditional ReLU features, exercising
//! both of DeepSZ's modes:
//!
//! * expected-accuracy mode — minimize size under an accuracy-loss budget;
//! * expected-ratio mode — minimize accuracy loss under a size budget.
//!
//! ```text
//! cargo run --release --example imagenet_surrogate
//! ```

use deepsz::datagen::features::FeatureSpec;
use deepsz::prelude::*;

fn main() {
    // Train the reduced AlexNet head (fc6/fc7/fc8) on synthetic features.
    let spec = FeatureSpec::alexnet_reduced();
    let (train_data, test_data) = deepsz::datagen::features::train_test(&spec, 3000, 1500, 99);
    let mut net = zoo::build(Arch::AlexNet, Scale::Reduced, 5);
    println!(
        "training reduced AlexNet head ({} fc weights)…",
        net.fc_bytes() / 4
    );
    nn::train(
        &mut net,
        &train_data,
        &TrainConfig {
            epochs: 3,
            lr: 0.02,
            batch: 100,
            ..Default::default()
        },
        None,
    );
    let (masks, _) = prune::prune_network(&mut net, Arch::AlexNet.pruning_densities());
    prune::retrain(
        &mut net,
        &train_data,
        &TrainConfig {
            epochs: 1,
            lr: 0.005,
            batch: 100,
            ..Default::default()
        },
        &masks,
    );

    let eval = DatasetEvaluator::new(test_data);
    let cfg = AssessmentConfig {
        expected_loss: 0.004,
        ..Default::default()
    };
    let (assessments, baseline) = assess_network(&net, &cfg, &eval).expect("assessment");
    println!("baseline top-1 (surrogate task): {:.2}%", baseline * 100.0);

    // Mode 1: expected accuracy (the paper's 0.4% budget for AlexNet).
    let acc_plan = optimize_for_accuracy(&assessments, cfg.expected_loss).expect("plan");
    let (_, acc_report) = encode_with_plan(&assessments, &acc_plan).expect("encode");
    println!(
        "\nexpected-accuracy mode (ε* = 0.4%): {:.1}x, predicted loss {:.2}%",
        acc_report.ratio(),
        acc_plan.predicted_loss * 100.0
    );
    for c in &acc_plan.layers {
        println!(
            "  {}: eb {:.0e} -> {} bytes",
            c.fc.name,
            c.eb,
            c.total_bytes()
        );
    }

    // Mode 2: expected ratio — sweep tightening size budgets and watch the
    // accuracy/size trade-off move.
    println!("\nexpected-ratio mode (size budget sweep):");
    println!(
        "{:>12} | {:>8} | {:>16}",
        "budget", "achieved", "predicted loss"
    );
    let mut budget = acc_plan.total_bytes * 2;
    for _ in 0..4 {
        match optimize_for_size(&assessments, budget) {
            Ok(plan) => println!(
                "{:>12} | {:>8} | {:>15.2}%",
                budget,
                plan.total_bytes,
                plan.predicted_loss * 100.0
            ),
            Err(e) => println!("{budget:>12} | infeasible: {e}"),
        }
        budget /= 2;
    }
}
