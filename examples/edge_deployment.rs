//! Edge deployment scenario — the paper's motivating use case (§1):
//! a model trained in the cloud must be shipped to edge devices over a
//! bandwidth-limited network (0.8 billion users were projected to still be
//! on ~1 Mbit/s 2G links). This example measures how DeepSZ changes the
//! end-to-end "ship + decode + first inference" latency.
//!
//! ```text
//! cargo run --release --example edge_deployment
//! ```

use deepsz::prelude::*;
use std::time::Instant;

/// Simulated 2G downlink: 1 Mbit/s.
const LINK_BITS_PER_SEC: f64 = 1_000_000.0;

fn transfer_secs(bytes: usize) -> f64 {
    bytes as f64 * 8.0 / LINK_BITS_PER_SEC
}

fn main() {
    // Cloud side: train, prune, retrain, compress.
    let train_data = digits::dataset(2000, 11);
    let test_data = digits::dataset(500, 12);
    let mut net = zoo::build(Arch::LeNet300, Scale::Full, 7);
    nn::train(
        &mut net,
        &train_data,
        &TrainConfig {
            epochs: 2,
            ..Default::default()
        },
        None,
    );
    let (masks, _) = prune::prune_network(&mut net, Arch::LeNet300.pruning_densities());
    prune::retrain(
        &mut net,
        &train_data,
        &TrainConfig {
            epochs: 1,
            lr: 0.02,
            ..Default::default()
        },
        &masks,
    );

    let eval = DatasetEvaluator::new(test_data.clone());
    let cfg = AssessmentConfig {
        expected_loss: 0.005,
        ..Default::default()
    };
    let (assessments, baseline) = assess_network(&net, &cfg, &eval).expect("assessment");
    let plan = optimize_for_accuracy(&assessments, cfg.expected_loss).expect("plan");
    let (model, report) = encode_with_plan(&assessments, &plan).expect("encode");

    // Three shipping strategies for the fc weights.
    let raw_bytes = report.total_dense_bytes;
    let pair_bytes: usize = assessments.iter().map(|a| a.pair.size_bytes()).sum();
    let dsz_bytes = report.total_bytes;

    println!(
        "shipping fc layers over a {:.1} Mbit/s link:",
        LINK_BITS_PER_SEC / 1e6
    );
    println!(
        "  raw f32      : {raw_bytes:>9} B -> {:>7.2} s",
        transfer_secs(raw_bytes)
    );
    println!(
        "  pruned pairs : {pair_bytes:>9} B -> {:>7.2} s",
        transfer_secs(pair_bytes)
    );
    println!(
        "  DeepSZ       : {dsz_bytes:>9} B -> {:>7.2} s",
        transfer_secs(dsz_bytes)
    );

    // Edge side: decode, install, run the first inference batch.
    let t0 = Instant::now();
    let (decoded, timing) = decode_model(&model).expect("decode");
    let mut edge_net = net.clone();
    apply_decoded(&mut edge_net, decoded).expect("apply");
    let decode_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let (top1, _) = nn::accuracy(&edge_net, &test_data, 100, 5);
    let infer_s = t0.elapsed().as_secs_f64();

    let total_dsz = transfer_secs(dsz_bytes) + decode_s + infer_s;
    let total_raw = transfer_secs(raw_bytes) + infer_s;
    println!(
        "\nedge decode {:.0} ms wall (per-layer stage sums: lossless {:.1} / lossy {:.1} / reconstruct {:.1})",
        decode_s * 1e3,
        timing.lossless_ms,
        timing.lossy_ms,
        timing.reconstruct_ms
    );
    println!(
        "first-batch accuracy at the edge: {:.2}% (cloud baseline {:.2}%)",
        top1 * 100.0,
        baseline * 100.0
    );
    println!(
        "time to first inference: raw {total_raw:.2} s vs DeepSZ {total_dsz:.2} s ({:.1}x faster)",
        total_raw / total_dsz
    );
    assert!(
        total_dsz < total_raw,
        "compression must pay for itself on a slow link"
    );
}
