//! Full four-step DeepSZ pipeline on LeNet-5 (the conv architecture):
//! train → prune+retrain → cache conv features → assess → optimize →
//! encode → ship → decode → verify. Prints a per-layer report like the
//! paper's Table 2b.
//!
//! ```text
//! cargo run --release --example lenet_pipeline
//! ```

use deepsz::prelude::*;

fn main() {
    // LeNet-5: 3 conv + 2 fc layers on 28×28 digits.
    let train_data = digits::dataset(1200, 21);
    let test_data = digits::dataset(500, 22);
    let mut net = zoo::build(Arch::LeNet5, Scale::Full, 13);
    println!(
        "training LeNet-5 ({} conv layers, {} fc layers)…",
        Arch::LeNet5.conv_layers(),
        net.fc_layers().len()
    );
    nn::train(
        &mut net,
        &train_data,
        &TrainConfig {
            epochs: 2,
            lr: 0.05,
            ..Default::default()
        },
        None,
    );

    // Step 1: magnitude pruning + masked retraining (§3.2).
    let (masks, stats) = prune::prune_network(&mut net, Arch::LeNet5.pruning_densities());
    prune::retrain(
        &mut net,
        &train_data,
        &TrainConfig {
            epochs: 1,
            lr: 0.01,
            ..Default::default()
        },
        &masks,
    );
    for s in &stats {
        println!("  pruned {}: {:.1}% kept", s.name, s.density() * 100.0);
    }

    // Conv layers are never compressed, so cache their features once and
    // work on the fc head (what the evaluation loop actually runs).
    let (head, test_features) = cache_features(&net, &test_data, 128);
    let eval = DatasetEvaluator::new(test_features);

    // Steps 2+3: assessment (Algorithm 1) + optimization (Algorithm 2)
    // at the paper's 0.2% expected loss for the LeNets.
    let cfg = AssessmentConfig {
        expected_loss: 0.002,
        ..Default::default()
    };
    let (assessments, baseline) = assess_network(&head, &cfg, &eval).expect("assessment");
    println!("\nbaseline top-1: {:.2}%", baseline * 100.0);
    for a in &assessments {
        let ebs: Vec<String> = a.points.iter().map(|p| format!("{:.0e}", p.eb)).collect();
        println!(
            "  {}: feasible bounds tested {{{}}}, index codec {}",
            a.fc.name,
            ebs.join(", "),
            a.index_codec.name()
        );
    }
    let plan = optimize_for_accuracy(&assessments, cfg.expected_loss).expect("plan");

    // Step 4: compressed model generation.
    let (model, report) = encode_with_plan(&assessments, &plan).expect("encode");
    println!("\nper-layer result (cf. paper Table 2b):");
    println!(
        "{:>6} | {:>10} | {:>10} | {:>10} | {:>7}",
        "layer", "original", "pair-array", "DeepSZ", "ratio"
    );
    for l in &report.layers {
        println!(
            "{:>6} | {:>10} | {:>10} | {:>10} | {:>6.1}x",
            l.name,
            l.dense_bytes,
            l.pair_bytes,
            l.data_bytes + l.index_bytes,
            l.ratio()
        );
    }
    println!(
        "overall fc ratio: {:.1}x (paper: 57.3x on real MNIST)",
        report.ratio()
    );

    // Verify on the decoded model.
    let (decoded, _) = decode_model(&model).expect("decode");
    let mut restored = head.clone();
    apply_decoded(&mut restored, decoded).expect("apply");
    let after = {
        use deepsz::framework::AccuracyEvaluator as _;
        eval.evaluate(&restored)
    };
    println!(
        "top-1 after round trip: {:.2}% (loss {:+.2}%, budget {:.1}%)",
        after * 100.0,
        (baseline - after) * 100.0,
        cfg.expected_loss * 100.0
    );
}
