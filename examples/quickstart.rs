//! Quickstart: compress a small trained network with DeepSZ in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use deepsz::prelude::*;

fn main() {
    // 1. Train a LeNet-300-100 on the synthetic digit workload.
    let train_data = digits::dataset(2000, 1);
    let test_data = digits::dataset(600, 2);
    let mut net = zoo::build(Arch::LeNet300, Scale::Full, 42);
    println!("training LeNet-300-100 ({} parameters)…", net.param_count());
    nn::train(
        &mut net,
        &train_data,
        &TrainConfig {
            epochs: 2,
            ..Default::default()
        },
        None,
    );

    // 2. Prune to the paper's densities and retrain with masks.
    let (masks, stats) = prune::prune_network(&mut net, Arch::LeNet300.pruning_densities());
    for s in &stats {
        println!(
            "pruned {}: kept {:.1}% of {} weights",
            s.name,
            s.density() * 100.0,
            s.total
        );
    }
    prune::retrain(
        &mut net,
        &train_data,
        &TrainConfig {
            epochs: 1,
            lr: 0.02,
            ..Default::default()
        },
        &masks,
    );

    // 3. Assess error bounds (Algorithm 1) and optimize the configuration
    //    (Algorithm 2) under a 0.5% expected accuracy loss.
    let eval = DatasetEvaluator::new(test_data.clone());
    let cfg = AssessmentConfig {
        expected_loss: 0.005,
        ..Default::default()
    };
    let (assessments, baseline) = assess_network(&net, &cfg, &eval).expect("assessment");
    let plan = optimize_for_accuracy(&assessments, cfg.expected_loss).expect("plan");
    for c in &plan.layers {
        println!(
            "layer {}: error bound {:.0e} via {}, predicted degradation {:+.3}%",
            c.fc.name,
            c.eb,
            c.codec.name(),
            c.degradation * 100.0
        );
    }

    // 4. Stream the compressed model straight to a file — container bytes
    //    are written while later layers are still compressing, so no
    //    fully-materialized copy ever lives in memory — then read it back,
    //    decode, and verify.
    let path = std::env::temp_dir().join("deepsz_quickstart.dszm");
    let file = std::io::BufWriter::new(std::fs::File::create(&path).expect("create container"));
    let report = encode_to_writer(&assessments, &plan, file).expect("encode");
    println!(
        "compressed {} of fc weights into {} bytes ({:.1}x) at {}",
        report.total_dense_bytes,
        report.total_bytes,
        report.ratio(),
        path.display()
    );
    let model = deepsz::framework::CompressedModel {
        bytes: std::fs::read(&path).expect("read container"),
    };
    let _ = std::fs::remove_file(&path);
    let (decoded, timing) = decode_model(&model).expect("decode");
    apply_decoded(&mut net, decoded).expect("apply");
    let after = {
        use deepsz::framework::AccuracyEvaluator as _;
        eval.evaluate(&net)
    };
    println!(
        "accuracy: {:.2}% -> {:.2}% (budget {:.2}%); decode took {:.1} ms",
        baseline * 100.0,
        after * 100.0,
        cfg.expected_loss * 100.0,
        timing.wall_ms
    );
    assert!(baseline - after <= cfg.expected_loss + 0.02);
}
