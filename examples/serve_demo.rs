//! Multi-tenant serving demo (`docs/SERVING.md`): two compressed models
//! behind one registry, one shared decoded-layer cache, and the
//! count-bounded micro-batcher — load, serve, coalesce, hot-swap,
//! cancel.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```

use deepsz::framework::optimizer::{ChosenLayer, Plan};
use deepsz::framework::{encode_with_plan, DataCodecKind, LayerAssessment};
use deepsz::prelude::*;
use deepsz::serve::{ModelRegistry, ServeError, Server};
use std::sync::Arc;

/// A LeNet-300-100 (reduced) tenant with seed-distinct pruned weights,
/// encoded into a DSZM container — no training loop needed for a demo.
fn build_tenant(seed: u64) -> (Network, Vec<u8>) {
    let net = zoo::build(Arch::LeNet300, Scale::Reduced, seed);
    let mut assessments: Vec<LayerAssessment> = Vec::new();
    let mut chosen: Vec<ChosenLayer> = Vec::new();
    let densities = Arch::LeNet300.pruning_densities();
    for (li, fc) in net.fc_layers().into_iter().enumerate() {
        let mut dense = weights::trained_fc_weights(fc.rows, fc.cols, seed ^ (li as u64) << 8);
        prune::prune_to_density(&mut dense, densities[li % densities.len()]);
        let pair = PairArray::from_dense(&dense, fc.rows, fc.cols);
        let (index_codec, index_blob) = deepsz::lossless::best_fit(&pair.index);
        chosen.push(ChosenLayer {
            fc: fc.clone(),
            eb: 1e-3,
            degradation: 0.0,
            data_bytes: 0,
            index_bytes: index_blob.len(),
            codec: DataCodecKind::Sz,
            point_index: 0,
        });
        assessments.push(LayerAssessment {
            fc,
            pair,
            index_codec,
            index_bytes: index_blob.len(),
            points: Vec::new(),
        });
    }
    let plan = Plan {
        layers: chosen,
        predicted_loss: 0.0,
        total_bytes: 0,
    };
    let (model, _) = encode_with_plan(&assessments, &plan).expect("encode tenant");
    (net, model.bytes)
}

fn probe(dim: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..dim)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

fn main() {
    // One registry, one shared cache, one server. The 4 MiB quota fits
    // both tenants' decoded stacks (fc1 alone is ~940 KB), so warm
    // traffic turns into hits; shrink it to watch LRU churn instead.
    let registry = Arc::new(ModelRegistry::new(4 << 20));
    let server = Server::new(Arc::clone(&registry), BatchConfig::default());

    let (net_a, container_a) = build_tenant(0xA11CE);
    let (net_b, container_b) = build_tenant(0xB0B);
    let a = registry
        .load("captioner", &net_a, &container_a)
        .expect("load a");
    registry
        .load("ranker", &net_b, &container_b)
        .expect("load b");
    println!(
        "loaded {:?}: {} layers each, {} container bytes for {:?}",
        registry.models(),
        a.layer_count(),
        a.container_bytes(),
        a.id()
    );

    // Burst of requests: submission only enqueues (count-bounded, no
    // timers), so the first wait drains one coalesced batch.
    let dim = a.input_features();
    let tickets: Vec<_> = (0..6)
        .map(|i| server.submit("captioner", probe(dim, i)).expect("submit"))
        .collect();
    let mut outputs = Vec::new();
    for t in tickets {
        outputs.push(t.wait().expect("serve"));
    }
    let stats = server.stats();
    println!(
        "burst of 6: {} batch(es), widest {} — first output begins {:?}",
        stats.batches,
        stats.max_batch_seen,
        &outputs[0][..3.min(outputs[0].len())]
    );

    // Both tenants share the cache: repeat traffic turns into hits.
    for i in 0..4 {
        server
            .infer("captioner", probe(dim, 100 + i))
            .expect("serve");
        server.infer("ranker", probe(dim, 200 + i)).expect("serve");
    }
    let cache = registry.cache_stats();
    println!(
        "shared cache after warm traffic: hit rate {:.2}, {} bytes resident (quota {})",
        cache.hit_rate(),
        cache.live_bytes,
        registry.cache().quota()
    );

    // Hot-swap "captioner" to a new generation: same id, new weights.
    let before = server.infer("captioner", probe(dim, 7)).expect("serve");
    let (net_a2, container_a2) = build_tenant(0xA2);
    registry
        .load("captioner", &net_a2, &container_a2)
        .expect("hot-swap");
    let after = server.infer("captioner", probe(dim, 7)).expect("serve");
    println!(
        "hot-swap: same request, output[0] {} -> {} (old generation purged, stale hits impossible)",
        before[0], after[0]
    );

    // Cancellation: a token fired before the batch drains resolves
    // without costing a batch slot or a flop.
    let ticket = server.submit("ranker", probe(dim, 9)).expect("submit");
    ticket.cancel();
    match ticket.wait() {
        Err(ServeError::Cancelled) => println!("cancelled request resolved as Cancelled"),
        other => panic!("expected cancellation, got {other:?}"),
    }

    let s = server.stats();
    println!(
        "served {} requests in {} batches (avg width {:.2}), {} cancelled",
        s.completed,
        s.batches,
        s.avg_batch(),
        s.cancelled
    );
}
