//! Tour of the compression substrates: SZ (error-bounded, adaptive
//! prediction), ZFP (fixed-accuracy transform coding) and the three
//! lossless codecs — applied directly to weight-like data, outside the
//! DeepSZ pipeline. Useful as a standalone compressor cookbook.
//!
//! ```text
//! cargo run --release --example compressor_tour
//! ```

use deepsz::lossless::{best_fit, LosslessKind};
use deepsz::sz::{self, ErrorBound, SzConfig};
use deepsz::{datagen::weights, zfp};

fn main() {
    // A full-size AlexNet fc7-like pruned weight array.
    let (values, _) = weights::pruned_nonzeros(4096, 4096, 0.09, 7);
    let raw = values.len() * 4;
    println!(
        "pruned fc7-like data array: {} nonzero weights ({raw} bytes)\n",
        values.len()
    );

    // --- error-bounded lossy compression ---
    println!(
        "{:>10} | {:>9} | {:>9} | {:>11} | {:>11}",
        "bound", "SZ bytes", "SZ ratio", "ZFP bytes", "ZFP ratio"
    );
    for eb in [1e-2f64, 1e-3, 1e-4] {
        let szb = sz::compress(&values, ErrorBound::Abs(eb)).expect("sz");
        let zfpb = zfp::compress(&values, eb).expect("zfp");
        // Verify both honor the bound.
        assert!(sz::max_abs_error(&values, &sz::decompress(&szb).unwrap()) <= eb * 1.000001);
        assert!(zfp::max_abs_error(&values, &zfp::decompress(&zfpb).unwrap()) <= eb);
        println!(
            "{eb:>10.0e} | {:>9} | {:>8.1}x | {:>11} | {:>10.1}x",
            szb.len(),
            raw as f64 / szb.len() as f64,
            zfpb.len(),
            raw as f64 / zfpb.len() as f64
        );
    }

    // --- SZ's other error modes ---
    println!("\nSZ error modes at matched quality:");
    for (label, bound) in [
        ("ABS 1e-3", ErrorBound::Abs(1e-3)),
        ("REL 0.2% of range", ErrorBound::Rel(0.002)),
        ("PSNR 60 dB", ErrorBound::Psnr(60.0)),
    ] {
        let blob = SzConfig::default().compress(&values, bound).expect("sz");
        let info = sz::info(&blob).expect("header");
        println!(
            "  {label:<18} -> abs eb {:.2e}, {} bytes",
            info.abs_eb,
            blob.len()
        );
    }

    // --- lossless codecs on the index stream ---
    let dense = weights::trained_fc_weights(512, 512, 3);
    let mut pruned = dense;
    deepsz::prune::prune_to_density(&mut pruned, 0.1);
    let pair = deepsz::sparse::PairArray::from_dense(&pruned, 512, 512);
    println!(
        "\nlossless codecs on a {}-byte index array:",
        pair.index.len()
    );
    for kind in LosslessKind::ALL {
        let blob = kind.codec().compress(&pair.index);
        println!(
            "  {:<6} {:>8} bytes ({:.2}x)",
            kind.name(),
            blob.len(),
            pair.index.len() as f64 / blob.len() as f64
        );
    }
    let (best, blob) = best_fit(&pair.index);
    println!(
        "  best-fit selection: {} ({} bytes)",
        best.name(),
        blob.len()
    );
}
