//! # DeepSZ — error-bounded lossy compression for deep neural networks
//!
//! A from-scratch Rust reproduction of *DeepSZ: A Novel Framework to
//! Compress Deep Neural Networks by Using Error-Bounded Lossy Compression*
//! (Jin et al., HPDC '19), including every substrate the paper relies on:
//! the SZ compressor, a ZFP baseline, gzip/Zstandard/Blosc-class lossless
//! codecs, sparse weight formats, a trainable DNN library, magnitude
//! pruning, and the two comparison systems (Deep Compression, Weightless).
//!
//! ## Quickstart
//!
//! ```
//! use deepsz::prelude::*;
//!
//! // 1. Train (or load) a network, then prune + retrain.
//! let mut net = zoo::build(Arch::LeNet300, Scale::Full, 42);
//! let data = digits::dataset(512, 7);
//! nn::train(&mut net, &data, &TrainConfig { epochs: 1, ..Default::default() }, None);
//! let (masks, _) = prune::prune_network(&mut net, Arch::LeNet300.pruning_densities());
//! prune::retrain(&mut net, &data, &TrainConfig { epochs: 1, ..Default::default() }, &masks);
//!
//! // 2. Assess per-layer error bounds (Algorithm 1) and optimize the
//! //    configuration (Algorithm 2) under an expected accuracy loss.
//! let eval = DatasetEvaluator::new(data.take(256));
//! let cfg = AssessmentConfig { expected_loss: 0.01, ..Default::default() };
//! let (assessments, _base) = assess_network(&net, &cfg, &eval).unwrap();
//! let plan = optimize_for_accuracy(&assessments, cfg.expected_loss).unwrap();
//!
//! // 3. Generate, ship, and decode the compressed model.
//! let (model, report) = encode_with_plan(&assessments, &plan).unwrap();
//! assert!(report.ratio() > 5.0);
//! let (decoded, _timing) = decode_model(&model).unwrap();
//! apply_decoded(&mut net, decoded).unwrap();
//! ```

pub use dsz_baselines as baselines;
pub use dsz_core as framework;
pub use dsz_datagen as datagen;
pub use dsz_lossless as lossless;
pub use dsz_nn as nn;
pub use dsz_prune as prune;
pub use dsz_serve as serve;
pub use dsz_sparse as sparse;
pub use dsz_sz as sz;
pub use dsz_tensor as tensor;
pub use dsz_zfp as zfp;

/// One-stop imports for the common pipeline.
pub mod prelude {
    pub use crate::datagen::{digits, features, weights};
    pub use crate::framework::{
        apply_decoded, assess_network, assess_network_full, cache_features, decode_model,
        encode_to_writer, encode_to_writer_config, encode_with_plan, linearity_experiment,
        optimize_for_accuracy, optimize_for_size, AccuracyEvaluator, AssessmentConfig, DataCodec,
        DataCodecKind, DatasetEvaluator, EncodeStreamConfig, IncrementalEvaluator, Plan, SzCodec,
        ZfpCodec,
    };
    pub use crate::nn::{self, accuracy, zoo, Arch, Dataset, Network, Scale, TrainConfig};
    pub use crate::prune;
    pub use crate::serve::{
        BatchConfig, ModelRegistry, ServeError, Server, ServerConfig, SubmitOptions,
    };
    pub use crate::sparse::{Csr, PairArray};
    pub use crate::sz::{ErrorBound, SzConfig, SzFormat};
}
