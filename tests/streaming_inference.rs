//! Integration tests for memory-bounded streaming inference over a
//! compressed model (the paper's §7 future-work direction).

use deepsz::framework::streaming::{streaming_matches_eager, CompressedFcModel};
use deepsz::prelude::*;

fn compressed_lenet() -> (Network, deepsz::framework::CompressedModel, Dataset) {
    let train_data = digits::dataset(1000, 71);
    let test_data = digits::dataset(300, 72);
    let mut net = zoo::build(Arch::LeNet300, Scale::Full, 23);
    nn::train(
        &mut net,
        &train_data,
        &TrainConfig {
            epochs: 2,
            ..Default::default()
        },
        None,
    );
    let (masks, _) = prune::prune_network(&mut net, Arch::LeNet300.pruning_densities());
    prune::retrain(
        &mut net,
        &train_data,
        &TrainConfig {
            epochs: 1,
            lr: 0.02,
            ..Default::default()
        },
        &masks,
    );
    let eval = DatasetEvaluator::new(test_data.clone());
    let cfg = AssessmentConfig {
        expected_loss: 0.01,
        ..Default::default()
    };
    let (assessments, _) = assess_network(&net, &cfg, &eval).unwrap();
    let plan = optimize_for_accuracy(&assessments, cfg.expected_loss).unwrap();
    let (model, _) = encode_with_plan(&assessments, &plan).unwrap();
    (net, model, test_data)
}

#[test]
fn streaming_forward_matches_eager_decode() {
    let (net, model, test) = compressed_lenet();
    let probe = test.batch(0, 32);
    assert!(streaming_matches_eager(&net, &model, &probe).unwrap());
}

#[test]
fn peak_memory_is_bounded_by_largest_layer() {
    let (net, model, test) = compressed_lenet();
    // Prefetch off: the strict memory bound of one resident layer.
    let streaming = CompressedFcModel::new(&net, &model)
        .unwrap()
        .with_prefetch(false);
    let probe = test.batch(0, 16);
    let (_, stats) = streaming.forward(&probe).unwrap();
    // Peak = largest single fc layer (ip1: 300×784), not the sum.
    let largest = net
        .fc_layers()
        .iter()
        .map(|f| f.dense_bytes())
        .max()
        .unwrap();
    let total: usize = net.fc_layers().iter().map(|f| f.dense_bytes()).sum();
    assert_eq!(stats.peak_dense_bytes, largest);
    assert_eq!(stats.total_dense_bytes, total);
    assert!(stats.peak_dense_bytes < total);
    // And the persistent copy is the compressed container (≫ smaller).
    assert!(stats.compressed_bytes * 10 < total);
}

#[test]
fn prefetch_holds_at_most_two_layers_and_matches_serial() {
    let (net, model, test) = compressed_lenet();
    let probe = test.batch(0, 16);
    let streaming = CompressedFcModel::new(&net, &model).unwrap();
    // Pin a multi-thread budget so the overlapped path runs even on
    // single-core hosts (budget < 2 falls back to the serial path).
    let (out_pre, stats_pre) =
        deepsz::tensor::parallel::with_workers(4, || streaming.forward(&probe)).unwrap();
    let serial = CompressedFcModel::new(&net, &model)
        .unwrap()
        .with_prefetch(false);
    let (out_ser, stats_ser) = serial.forward(&probe).unwrap();
    // Overlapped decode must not change the numerics.
    assert_eq!(out_pre, out_ser);
    assert_eq!(stats_pre.total_dense_bytes, stats_ser.total_dense_bytes);
    // Prefetch keeps the executing layer plus one in-flight decode.
    let dense: Vec<usize> = net.fc_layers().iter().map(|f| f.dense_bytes()).collect();
    let max_pair = dense
        .windows(2)
        .map(|w| w[0] + w[1])
        .max()
        .unwrap_or(dense[0]);
    assert!(stats_pre.peak_dense_bytes <= max_pair);
    assert!(stats_pre.peak_dense_bytes >= stats_ser.peak_dense_bytes);
    let total: usize = dense.iter().sum();
    assert!(stats_pre.peak_dense_bytes < total);
}

#[test]
fn prefetch_depths_zero_one_two_are_equivalent() {
    let (net, model, test) = compressed_lenet();
    let probe = test.batch(0, 16);
    let serial = CompressedFcModel::new(&net, &model)
        .unwrap()
        .with_prefetch_depth(0);
    let (out0, stats0) = serial.forward(&probe).unwrap();
    for depth in [1usize, 2, 3] {
        let m = CompressedFcModel::new(&net, &model)
            .unwrap()
            .with_prefetch_depth(depth);
        // Pin a multi-thread budget so the overlapped path runs even on
        // single-core hosts.
        let (out, stats) = deepsz::tensor::parallel::with_workers(4, || m.forward(&probe)).unwrap();
        assert_eq!(out, out0, "depth {depth} must not change the numerics");
        assert_eq!(stats.total_dense_bytes, stats0.total_dense_bytes);
        // Deeper pipelines may hold more dense bytes, never fewer layers'
        // worth than the serial bound.
        assert!(stats.peak_dense_bytes >= stats0.peak_dense_bytes);
    }
}

#[test]
fn deep_prefetch_pins_high_water_mark_to_decoded_bytes_budget() {
    let (net, model, test) = compressed_lenet();
    let probe = test.batch(0, 16);
    let dense: Vec<usize> = net.fc_layers().iter().map(|f| f.dense_bytes()).collect();
    assert_eq!(dense.len(), 3, "LeNet-300 fc stack");
    let total: usize = dense.iter().sum();

    // Depth 2 with no bytes budget: while the first (largest) layer
    // executes, both remaining layers are in flight — the whole stack is
    // the high-water mark.
    let unbounded = CompressedFcModel::new(&net, &model)
        .unwrap()
        .with_prefetch_depth(2);
    let (out_u, stats_u) =
        deepsz::tensor::parallel::with_workers(4, || unbounded.forward(&probe)).unwrap();
    assert_eq!(stats_u.peak_dense_bytes, total);

    // An explicit budget of the two largest layers blocks the third
    // prefetch exactly: the high-water mark lands on the budget.
    let budget = dense[0] + dense[1];
    assert!(budget < total);
    let bounded = CompressedFcModel::new(&net, &model)
        .unwrap()
        .with_prefetch_depth(2)
        .with_decoded_bytes_budget(Some(budget));
    let (out_b, stats_b) =
        deepsz::tensor::parallel::with_workers(4, || bounded.forward(&probe)).unwrap();
    assert_eq!(stats_b.peak_dense_bytes, budget);
    assert_eq!(out_b, out_u, "bytes budget must not change the numerics");

    // A budget smaller than any single layer suppresses prefetch entirely,
    // restoring the serial max(layer) bound (execution is never blocked).
    let strict = CompressedFcModel::new(&net, &model)
        .unwrap()
        .with_prefetch_depth(2)
        .with_decoded_bytes_budget(Some(1));
    let (out_s, stats_s) =
        deepsz::tensor::parallel::with_workers(4, || strict.forward(&probe)).unwrap();
    assert_eq!(stats_s.peak_dense_bytes, *dense.iter().max().unwrap());
    assert_eq!(out_s, out_u);
}

#[test]
fn materialize_round_trips_to_a_working_network() {
    let (net, model, test) = compressed_lenet();
    let (baseline, _) = nn::accuracy(&net, &test, 100, 5);
    let streaming = CompressedFcModel::new(&net, &model).unwrap();
    let full = streaming.materialize().unwrap();
    let (top1, _) = nn::accuracy(&full, &test, 100, 5);
    // Must stay near the (possibly modestly trained) baseline: the loss
    // budget was 1% plus small-test-set noise.
    assert!(
        top1 >= baseline - 0.03,
        "materialized accuracy {top1} vs baseline {baseline}"
    );
}

#[test]
fn mismatched_skeleton_rejected() {
    let (_, model, _) = compressed_lenet();
    let other = zoo::build(Arch::LeNet5, Scale::Full, 9);
    assert!(CompressedFcModel::new(&other, &model).is_err());
}
