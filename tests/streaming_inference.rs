//! Integration tests for memory-bounded streaming inference over a
//! compressed model (the paper's §7 future-work direction).

use deepsz::framework::streaming::{streaming_matches_eager, CompressedFcModel};
use deepsz::prelude::*;

fn compressed_lenet() -> (Network, deepsz::framework::CompressedModel, Dataset) {
    let train_data = digits::dataset(1000, 71);
    let test_data = digits::dataset(300, 72);
    let mut net = zoo::build(Arch::LeNet300, Scale::Full, 23);
    nn::train(&mut net, &train_data, &TrainConfig { epochs: 2, ..Default::default() }, None);
    let (masks, _) = prune::prune_network(&mut net, Arch::LeNet300.pruning_densities());
    prune::retrain(
        &mut net,
        &train_data,
        &TrainConfig { epochs: 1, lr: 0.02, ..Default::default() },
        &masks,
    );
    let eval = DatasetEvaluator::new(test_data.clone());
    let cfg = AssessmentConfig { expected_loss: 0.01, ..Default::default() };
    let (assessments, _) = assess_network(&net, &cfg, &eval).unwrap();
    let plan = optimize_for_accuracy(&assessments, cfg.expected_loss).unwrap();
    let (model, _) = encode_with_plan(&assessments, &plan).unwrap();
    (net, model, test_data)
}

#[test]
fn streaming_forward_matches_eager_decode() {
    let (net, model, test) = compressed_lenet();
    let probe = test.batch(0, 32);
    assert!(streaming_matches_eager(&net, &model, &probe).unwrap());
}

#[test]
fn peak_memory_is_bounded_by_largest_layer() {
    let (net, model, test) = compressed_lenet();
    let streaming = CompressedFcModel::new(&net, &model).unwrap();
    let probe = test.batch(0, 16);
    let (_, stats) = streaming.forward(&probe).unwrap();
    // Peak = largest single fc layer (ip1: 300×784), not the sum.
    let largest = net.fc_layers().iter().map(|f| f.dense_bytes()).max().unwrap();
    let total: usize = net.fc_layers().iter().map(|f| f.dense_bytes()).sum();
    assert_eq!(stats.peak_dense_bytes, largest);
    assert_eq!(stats.total_dense_bytes, total);
    assert!(stats.peak_dense_bytes < total);
    // And the persistent copy is the compressed container (≫ smaller).
    assert!(stats.compressed_bytes * 10 < total);
}

#[test]
fn materialize_round_trips_to_a_working_network() {
    let (net, model, test) = compressed_lenet();
    let (baseline, _) = nn::accuracy(&net, &test, 100, 5);
    let streaming = CompressedFcModel::new(&net, &model).unwrap();
    let full = streaming.materialize().unwrap();
    let (top1, _) = nn::accuracy(&full, &test, 100, 5);
    // Must stay near the (possibly modestly trained) baseline: the loss
    // budget was 1% plus small-test-set noise.
    assert!(
        top1 >= baseline - 0.03,
        "materialized accuracy {top1} vs baseline {baseline}"
    );
}

#[test]
fn mismatched_skeleton_rejected() {
    let (_, model, _) = compressed_lenet();
    let other = zoo::build(Arch::LeNet5, Scale::Full, 9);
    assert!(CompressedFcModel::new(&other, &model).is_err());
}
