//! Cross-crate integration tests for the comparison systems and the
//! compressor stack: the paper's relational claims that must hold on any
//! substrate (§4, Figure 2, Table 4/5 shapes).

use deepsz::baselines::deep_compression::{self, DcConfig};
use deepsz::baselines::weightless::{self, WlConfig};
use deepsz::datagen::weights;
use deepsz::lossless::best_fit;
use deepsz::prelude::*;

fn pruned_layer(rows: usize, cols: usize, density: f64, seed: u64) -> Vec<f32> {
    let mut dense = weights::trained_fc_weights(rows, cols, seed);
    prune::prune_to_density(&mut dense, density);
    dense
}

/// DeepSZ's compressed bytes for one pruned layer at a fixed bound.
fn deepsz_bytes(dense: &[f32], rows: usize, cols: usize, eb: f64) -> usize {
    let pair = PairArray::from_dense(dense, rows, cols);
    let sz = SzConfig::default()
        .compress(&pair.data, ErrorBound::Abs(eb))
        .unwrap();
    let (_, idx) = best_fit(&pair.index);
    sz.len() + idx.len()
}

#[test]
fn deepsz_beats_deep_compression_at_paper_settings() {
    // fc7-like fan-in (4096 inputs, so real-scale weight magnitudes),
    // paper density 9% and the paper's fc7 error bound 7e-3.
    let (rows, cols) = (512, 4096);
    let dense = pruned_layer(rows, cols, 0.09, 3);
    let dsz = deepsz_bytes(&dense, rows, cols, 7e-3);
    let dc = deep_compression::compressed_bytes(&deep_compression::encode_layer(
        &dense,
        rows,
        cols,
        &DcConfig::default(),
    ));
    // Paper Table 4: DeepSZ ratio 1.1–1.4x higher than DC per layer.
    assert!(
        (dsz as f64) < (dc as f64) * 1.02,
        "DeepSZ {dsz} should not lose to Deep Compression {dc}"
    );
}

#[test]
fn sz_beats_zfp_on_fc_data_arrays() {
    // Figure 2's claim across bounds and layer shapes.
    for (rows, cols, density, seed) in [(256, 1024, 0.09, 5u64), (100, 4096, 0.25, 7)] {
        let dense = pruned_layer(rows, cols, density, seed);
        let pair = PairArray::from_dense(&dense, rows, cols);
        for eb in [1e-2, 1e-3, 1e-4] {
            let sz = SzConfig::default()
                .compress(&pair.data, ErrorBound::Abs(eb))
                .unwrap();
            let zfp = deepsz::zfp::compress(&pair.data, eb).unwrap();
            assert!(
                sz.len() < zfp.len(),
                "eb {eb}: SZ {} should beat ZFP {} on {}x{}",
                sz.len(),
                zfp.len(),
                rows,
                cols
            );
        }
    }
}

#[test]
fn weightless_decode_is_structurally_slower_than_deepsz() {
    // §4.2: Weightless queries every matrix position (4 hashes each) while
    // DeepSZ decodes O(nnz); at realistic layer sizes (≥ millions of
    // positions, ≤ 10% density) the wall-clock relation must hold.
    let (rows, cols) = (1024, 4096);
    let dense = pruned_layer(rows, cols, 0.09, 9);
    let pair = PairArray::from_dense(&dense, rows, cols);
    let sz_blob = SzConfig::default()
        .compress(&pair.data, ErrorBound::Abs(7e-3))
        .unwrap();
    let (kind, idx_blob) = best_fit(&pair.index);
    let wl = weightless::encode_layer(&dense, rows, cols, &WlConfig::default()).unwrap();

    let t0 = std::time::Instant::now();
    for _ in 0..3 {
        let index = kind.codec().decompress(&idx_blob).unwrap();
        let data = deepsz::sz::decompress(&sz_blob).unwrap();
        let p = PairArray {
            rows,
            cols,
            data,
            index,
        };
        p.to_dense().unwrap();
    }
    let dsz_t = t0.elapsed();
    let t0 = std::time::Instant::now();
    for _ in 0..3 {
        weightless::decode_layer(&wl);
    }
    let wl_t = t0.elapsed();
    assert!(
        wl_t > dsz_t,
        "weightless {wl_t:?} must be slower than deepsz {dsz_t:?}"
    );
}

#[test]
fn deep_compression_at_low_bits_degrades_more_than_deepsz() {
    // Table 5's shape on a real trained network.
    let train_data = digits::dataset(1200, 31);
    let test_data = digits::dataset(600, 32);
    let mut net = zoo::build(Arch::LeNet300, Scale::Full, 17);
    nn::train(
        &mut net,
        &train_data,
        &TrainConfig {
            epochs: 2,
            ..Default::default()
        },
        None,
    );
    let (masks, _) = prune::prune_network(&mut net, Arch::LeNet300.pruning_densities());
    prune::retrain(
        &mut net,
        &train_data,
        &TrainConfig {
            epochs: 1,
            lr: 0.02,
            ..Default::default()
        },
        &masks,
    );
    let (base, _) = nn::accuracy(&net, &test_data, 200, 5);

    // DeepSZ at a moderate bound.
    let mut dsz_net = net.clone();
    for fc in net.fc_layers() {
        let d = net.dense(fc.layer_index);
        let pair = PairArray::from_dense(&d.w.data, d.w.rows, d.w.cols);
        let blob = SzConfig::default()
            .compress(&pair.data, ErrorBound::Abs(5e-3))
            .unwrap();
        let data = deepsz::sz::decompress(&blob).unwrap();
        dsz_net.dense_mut(fc.layer_index).w.data =
            pair.with_data(data).unwrap().to_dense().unwrap();
    }
    let (dsz_acc, _) = nn::accuracy(&dsz_net, &test_data, 200, 5);

    // Deep Compression at 2 bits (codebook of 4): must hurt more.
    let mut dc_net = net.clone();
    for fc in net.fc_layers() {
        let d = net.dense(fc.layer_index);
        let enc = deep_compression::encode_layer(
            &d.w.data,
            d.w.rows,
            d.w.cols,
            &DcConfig {
                bits: 2,
                kmeans_iters: 25,
            },
        );
        let (dense, ..) = deep_compression::decode_layer(&enc).unwrap();
        dc_net.dense_mut(fc.layer_index).w.data = dense;
    }
    let (dc_acc, _) = nn::accuracy(&dc_net, &test_data, 200, 5);

    assert!(
        base - dsz_acc <= base - dc_acc + 0.005,
        "DeepSZ drop {:.3} should be ≤ DC-2bit drop {:.3}",
        base - dsz_acc,
        base - dc_acc
    );
}

#[test]
fn best_fit_index_codec_always_wins_or_ties() {
    // §3.5: the framework picks the best codec per layer; verify the
    // best-fit choice is never beaten on representative index arrays.
    for density in [0.03, 0.09, 0.25] {
        let dense = pruned_layer(128, 512, density, 41);
        let pair = PairArray::from_dense(&dense, 128, 512);
        let (kind, blob) = best_fit(&pair.index);
        for other in deepsz::lossless::LosslessKind::ALL {
            let b = other.codec().compress(&pair.index);
            assert!(
                blob.len() <= b.len(),
                "best_fit({:?}) at density {density} beaten by {:?}",
                kind,
                other
            );
        }
    }
}

#[test]
fn model_io_roundtrip_through_compression() {
    // save → load → compress → decode → apply across the io boundary.
    let train_data = digits::dataset(800, 51);
    let mut net = zoo::build(Arch::LeNet300, Scale::Full, 5);
    nn::train(
        &mut net,
        &train_data,
        &TrainConfig {
            epochs: 1,
            ..Default::default()
        },
        None,
    );
    let (masks, _) = prune::prune_network(&mut net, Arch::LeNet300.pruning_densities());
    let _ = masks;

    let mut buf = Vec::new();
    deepsz::nn::io::save_network(&net, &mut buf).unwrap();
    let loaded = deepsz::nn::io::load_network(&mut buf.as_slice()).unwrap();
    assert_eq!(net, loaded);

    let eval = DatasetEvaluator::new(digits::dataset(300, 52));
    let cfg = AssessmentConfig {
        expected_loss: 0.01,
        ..Default::default()
    };
    let (assessments, _) = assess_network(&loaded, &cfg, &eval).unwrap();
    let plan = optimize_for_accuracy(&assessments, cfg.expected_loss).unwrap();
    let (model, report) = encode_with_plan(&assessments, &plan).unwrap();
    assert!(report.ratio() > 10.0);
    let (decoded, _) = decode_model(&model).unwrap();
    let mut target = loaded.clone();
    apply_decoded(&mut target, decoded).unwrap();
}
