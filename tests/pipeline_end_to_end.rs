//! Cross-crate integration tests: the full DeepSZ pipeline on trained
//! networks (train → prune → retrain → assess → optimize → encode →
//! decode → apply), exercising every workspace crate together.

use deepsz::prelude::*;

/// Shared fixture: a pruned + retrained LeNet-300-100 on synthetic digits.
fn trained_pruned_lenet300() -> (Network, Dataset, Dataset) {
    let train_data = digits::dataset(1500, 11);
    let test_data = digits::dataset(400, 12);
    let mut net = zoo::build(Arch::LeNet300, Scale::Full, 21);
    let cfg = TrainConfig {
        epochs: 2,
        lr: 0.08,
        ..Default::default()
    };
    nn::train(&mut net, &train_data, &cfg, None);
    let (masks, _) = prune::prune_network(&mut net, Arch::LeNet300.pruning_densities());
    prune::retrain(
        &mut net,
        &train_data,
        &TrainConfig {
            epochs: 1,
            lr: 0.02,
            ..cfg
        },
        &masks,
    );
    (net, train_data, test_data)
}

#[test]
fn full_pipeline_lenet300() {
    let (mut net, _train, test) = trained_pruned_lenet300();
    let eval = DatasetEvaluator::new(test.clone());
    let baseline = {
        use deepsz::framework::AccuracyEvaluator as _;
        eval.evaluate(&net)
    };
    assert!(
        baseline > 0.90,
        "pruned+retrained baseline accuracy {baseline}"
    );

    // Algorithm 1: feasible ranges + (Δ, σ) samples per layer.
    let cfg = AssessmentConfig {
        expected_loss: 0.01,
        ..Default::default()
    };
    let (assessments, measured_base) = assess_network(&net, &cfg, &eval).unwrap();
    assert_eq!(assessments.len(), 3);
    assert!((measured_base - baseline).abs() < 1e-9);
    for a in &assessments {
        assert!(
            !a.points.is_empty(),
            "layer {} has no assessed points",
            a.fc.name
        );
        // Strong trend: tightest bound costs clearly more than the loosest.
        // (Lorenzo feedback noise makes sizes mildly non-monotonic at the
        // extreme loose end, so per-step shrinkage is only checked with
        // slack.)
        let first = a.points.first().expect("non-empty");
        let last = a.points.last().expect("non-empty");
        if last.eb >= 10.0 * first.eb {
            assert!(
                last.data_bytes < first.data_bytes,
                "layer {}: {} bytes at eb {} vs {} bytes at eb {}",
                a.fc.name,
                first.data_bytes,
                first.eb,
                last.data_bytes,
                last.eb
            );
        }
        for w in a.points.windows(2) {
            assert!(w[0].eb < w[1].eb);
            assert!(
                w[1].data_bytes <= w[0].data_bytes + w[0].data_bytes / 3,
                "layer {}: size jumped {} -> {}",
                a.fc.name,
                w[0].data_bytes,
                w[1].data_bytes
            );
        }
    }

    // Algorithm 2: minimize size within the loss budget.
    let plan = optimize_for_accuracy(&assessments, cfg.expected_loss).unwrap();
    assert_eq!(plan.layers.len(), 3);
    assert!(plan.predicted_loss <= cfg.expected_loss + 1e-12);

    // Step 4: container round trip.
    let (model, report) = encode_with_plan(&assessments, &plan).unwrap();
    assert!(
        report.ratio() > 15.0,
        "compression ratio {} too low for pruned LeNet-300-100",
        report.ratio()
    );
    let (decoded, timing) = decode_model(&model).unwrap();
    assert_eq!(decoded.len(), 3);
    assert!(timing.total_ms() >= 0.0);

    // Applying the decoded model keeps accuracy within the expected loss
    // (plus slack for the finite test set).
    apply_decoded(&mut net, decoded).unwrap();
    let after = {
        use deepsz::framework::AccuracyEvaluator as _;
        eval.evaluate(&net)
    };
    assert!(
        baseline - after <= cfg.expected_loss + 0.02,
        "accuracy dropped {baseline} -> {after}, budget {}",
        cfg.expected_loss
    );
}

#[test]
fn decoded_weights_respect_error_bounds_and_sparsity() {
    let (net, _train, test) = trained_pruned_lenet300();
    let eval = DatasetEvaluator::new(test.take(200));
    let cfg = AssessmentConfig {
        expected_loss: 0.02,
        ..Default::default()
    };
    let (assessments, _) = assess_network(&net, &cfg, &eval).unwrap();
    let plan = optimize_for_accuracy(&assessments, cfg.expected_loss).unwrap();
    let (model, _) = encode_with_plan(&assessments, &plan).unwrap();
    let (decoded, _) = decode_model(&model).unwrap();

    for (d, c) in decoded.iter().zip(&plan.layers) {
        let orig = &net.dense(d.layer_index).w;
        assert_eq!(orig.rows, d.rows);
        for (i, (&o, &r)) in orig.data.iter().zip(&d.dense).enumerate() {
            if o == 0.0 {
                assert_eq!(r, 0.0, "pruned weight {i} of {} became nonzero", d.name);
            } else {
                assert!(
                    (o as f64 - r as f64).abs() <= c.eb * (1.0 + 1e-9),
                    "weight {i} of {}: |{o} - {r}| > eb {}",
                    d.name,
                    c.eb
                );
            }
        }
    }
}

#[test]
fn expected_ratio_mode_meets_size_budget() {
    let (net, _train, test) = trained_pruned_lenet300();
    let eval = DatasetEvaluator::new(test.take(200));
    let cfg = AssessmentConfig {
        expected_loss: 0.02,
        ..Default::default()
    };
    let (assessments, _) = assess_network(&net, &cfg, &eval).unwrap();

    // Take the accuracy-mode plan's size (plus slack for the DP's size
    // bucketing) as the budget for the expected-ratio mode.
    let acc_plan = optimize_for_accuracy(&assessments, cfg.expected_loss).unwrap();
    let budget = acc_plan.total_bytes + acc_plan.total_bytes / 20;
    let size_plan = deepsz::framework::optimize_for_size(&assessments, budget).unwrap();
    assert!(size_plan.total_bytes <= budget);
    // Minimizing degradation under a budget that admits the accuracy-mode
    // plan can never do worse than that plan.
    assert!(
        size_plan.predicted_loss <= acc_plan.predicted_loss + 1e-12,
        "{} vs {}",
        size_plan.predicted_loss,
        acc_plan.predicted_loss
    );
}

#[test]
fn container_rejects_corruption_gracefully() {
    let (net, _train, test) = trained_pruned_lenet300();
    let eval = DatasetEvaluator::new(test.take(100));
    let cfg = AssessmentConfig {
        expected_loss: 0.02,
        ..Default::default()
    };
    let (assessments, _) = assess_network(&net, &cfg, &eval).unwrap();
    let plan = optimize_for_accuracy(&assessments, cfg.expected_loss).unwrap();
    let (model, _) = encode_with_plan(&assessments, &plan).unwrap();

    // Header corruption.
    let mut bad = model.clone();
    bad.bytes[0] = b'X';
    assert!(decode_model(&bad).is_err());
    // Truncation at any point must error, never panic.
    for cut in [5usize, 20, model.bytes.len() / 2, model.bytes.len() - 1] {
        let truncated = deepsz::framework::CompressedModel {
            bytes: model.bytes[..cut].to_vec(),
        };
        assert!(decode_model(&truncated).is_err(), "cut at {cut} decoded");
    }
}

#[test]
fn applying_to_mismatched_network_fails() {
    let (net, _train, test) = trained_pruned_lenet300();
    let eval = DatasetEvaluator::new(test.take(100));
    let cfg = AssessmentConfig {
        expected_loss: 0.02,
        ..Default::default()
    };
    let (assessments, _) = assess_network(&net, &cfg, &eval).unwrap();
    let plan = optimize_for_accuracy(&assessments, cfg.expected_loss).unwrap();
    let (model, _) = encode_with_plan(&assessments, &plan).unwrap();
    let (decoded, _) = decode_model(&model).unwrap();

    let mut other = zoo::build(Arch::LeNet5, Scale::Full, 3);
    assert!(deepsz::framework::apply_decoded(&mut other, decoded).is_err());
}
